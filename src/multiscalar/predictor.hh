/**
 * @file
 * Path-based task-level control-flow predictor (Jacobson et al.,
 * cited as [7] by the paper; configuration from section 4.2). The
 * higher-level control unit predicts the next task among up to four
 * descriptor targets using a target table indexed by a 15-bit
 * XOR-folded path register, with an address table for targets not
 * captured statically and a return address stack for tasks that may
 * exit through returns. A 1024-entry 2-way task-descriptor cache
 * models descriptor fetch latency.
 */

#ifndef SVC_MULTISCALAR_PREDICTOR_HH
#define SVC_MULTISCALAR_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "isa/program.hh"
#include "mem/cache_storage.hh"
#include "multiscalar/config.hh"

namespace svc
{

/** One prediction, carrying the state needed to train later. */
struct TaskPrediction
{
    /** Predicted next-task entry (kNoAddr if unpredictable). */
    Addr next = kNoAddr;
    /** Path register value *before* this prediction (restored on
     *  squash). */
    std::uint32_t pathBefore = 0;
    /** Table index used (for training at resolution). */
    std::uint32_t index = 0;
    /** Descriptor-cache & table access latency. */
    Cycle latency = 0;
    /** The RAS supplied the target. */
    bool usedRas = false;
};

/** The task predictor. */
class TaskPredictor
{
  public:
    explicit TaskPredictor(const PredictorConfig &config);

    /**
     * Predict the successor of the task described by @p desc.
     * Advances the path register speculatively.
     */
    TaskPrediction predict(const isa::TaskDescriptor &desc);

    /**
     * Train with the resolved outcome of @p prediction for the task
     * @p desc: @p actual is the real next-task entry.
     */
    void resolve(const TaskPrediction &prediction,
                 const isa::TaskDescriptor &desc, Addr actual);

    /** Restore the path register after a squash. */
    void restorePath(std::uint32_t path) { pathReg = path; }

    /** Fold a known (non-predicted) task entry into the path. */
    void notePath(Addr entry) { advancePath(entry); }

    std::uint32_t path() const { return pathReg; }

    /** Push a task-level return target. */
    void pushRas(Addr addr);

    /** Pop the task-level return target (kNoAddr if empty). */
    Addr popRas();

    StatSet stats() const;

    /** Serialize path register, tables, RAS, desc cache, counters. */
    void saveState(SnapshotWriter &w) const;

    /** Restore into an identically configured predictor. */
    bool restoreState(SnapshotReader &r);

    Counter nPredictions = 0;
    Counter nCorrect = 0;
    Counter nMispredicts = 0;
    Counter nDescMisses = 0;
    Counter nRasUses = 0;

  private:
    struct TargetEntry
    {
        std::uint8_t counter = 0; ///< 2-bit confidence
        std::uint8_t target = 0;  ///< 2-bit target index
    };

    struct AddressEntry
    {
        std::uint8_t counter = 0; ///< 2-bit confidence
        Addr addr = 0;
    };

    struct Empty
    {};

    /** Fold a task address into pathBits bits. */
    std::uint32_t fold(Addr addr) const;

  public:
    /** Advance the path register with @p addr. */
    void advancePath(Addr addr);

  private:

    /** Descriptor cache lookup (timing only). */
    Cycle descAccess(Addr entry);

    PredictorConfig cfg;
    std::uint32_t pathReg = 0;
    std::vector<TargetEntry> targetTable;
    std::vector<AddressEntry> addressTable;
    std::vector<Addr> ras;
    CacheStorage<Empty> descCache;
};

} // namespace svc

#endif // SVC_MULTISCALAR_PREDICTOR_HH
