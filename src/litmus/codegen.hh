/**
 * @file
 * Litmus code generation: lower a LitmusTest plus a task order into
 * the two stimulus shapes the rails already execute —
 *
 *  - a task-annotated MiniISA program (one speculative task per
 *    litmus thread, in the chosen order, plus a final observer
 *    task that snapshots every location and writes a checksum), so
 *    the full multiscalar + SVC/ARB stack, the fault injectors and
 *    the recovery ladder all apply unchanged; and
 *
 *  - a per-thread access stream for the speculative replay driver
 *    (trace_io/trace_replayer.hh), whose seeded interleaving gives
 *    cheap high-volume outcome sampling.
 *
 * Observation slots are laid out by *original* thread index, so an
 * outcome extracted from memory is independent of the permutation
 * that produced it. The location stride is a knob: 64 puts every
 * location on its own cache line, 4 packs them into one line — the
 * false-sharing flavor of the same shape.
 */

#ifndef SVC_LITMUS_CODEGEN_HH
#define SVC_LITMUS_CODEGEN_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "litmus/oracle.hh"
#include "workloads/trace_gen.hh"

namespace svc
{
class MainMemory;
}

namespace svc::litmus
{

/** Lowering knobs. */
struct CodegenOptions
{
    /** Byte distance between consecutive locations: 64 = one line
     *  each (paper geometry), 4 = packed into a shared line. */
    unsigned locStride = 64;
};

/** A lowered litmus program plus its memory map. */
struct LitmusProgram
{
    isa::Program program;
    Addr locsBase = 0;  ///< location l lives at locsBase+l*stride
    Addr obsBase = 0;   ///< checksum word, then loads, then finals
    unsigned locStride = 64;
    /** Verification window (checksum + observations + finals). */
    Addr checkBase = 0;
    std::size_t checkLen = 0;
};

/** Lower @p test with threads running as tasks in @p order. */
LitmusProgram buildProgram(const LitmusTest &test,
                           const TaskOrder &order,
                           const CodegenOptions &opts = {});

/**
 * The same lowering as a replay-driver access stream: trace thread
 * i carries the ops of original thread order[i] against the same
 * location addresses (no observer thread — the replayer captures
 * committed load values directly).
 */
std::vector<std::vector<workloads::TraceOp>>
buildStream(const LitmusTest &test, const TaskOrder &order,
            const CodegenOptions &opts = {});

/** Location address under @p opts (stream and program agree). */
Addr locAddr(unsigned loc, const CodegenOptions &opts);

/**
 * Read the outcome a finished program run left in @p mem (the
 * observer task's snapshot plus every load's observation slot).
 */
Outcome extractOutcome(const LitmusTest &test,
                       const LitmusProgram &prog,
                       const MainMemory &mem);

/**
 * Assemble the outcome of a stream replay: @p capturedLoads are
 * the replayer's committed load values per *trace* thread (in
 * @p order), final location values are read from @p mem.
 */
Outcome streamOutcome(
    const LitmusTest &test, const TaskOrder &order,
    const std::vector<std::vector<std::uint64_t>> &capturedLoads,
    const MainMemory &mem, const CodegenOptions &opts = {});

} // namespace svc::litmus

#endif // SVC_LITMUS_CODEGEN_HH
