#include "litmus/shapes.hh"

namespace svc::litmus
{

namespace
{

/** Message passing: the consumer must not see the flag without the
 *  payload. */
LitmusTest
makeMp()
{
    LitmusBuilder b("MP");
    b.thread("P0").st("x", 1).st("y", 1);
    b.thread("P1").ld("y").ld("x");
    b.interesting("P1:r0=1 P1:r1=0 | x=1 y=1");
    return b.build();
}

/** Store buffering: both threads must not read 0 (the TSO-visible
 *  reordering). */
LitmusTest
makeSb()
{
    LitmusBuilder b("SB");
    b.thread("P0").st("x", 1).ld("y");
    b.thread("P1").st("y", 1).ld("x");
    b.interesting("P0:r0=0 P1:r0=0 | x=1 y=1");
    return b.build();
}

/** Load buffering: loads must not both observe the other thread's
 *  later store. */
LitmusTest
makeLb()
{
    LitmusBuilder b("LB");
    b.thread("P0").ld("x").st("y", 1);
    b.thread("P1").ld("y").st("x", 1);
    b.interesting("P0:r0=1 P1:r0=1 | x=1 y=1");
    return b.build();
}

/** Write-to-read causality: P2 sees P1's write (which saw P0's)
 *  but not P0's — causality chain broken. */
LitmusTest
makeWrc()
{
    LitmusBuilder b("WRC");
    b.thread("P0").st("x", 1);
    b.thread("P1").ld("x").st("y", 1);
    b.thread("P2").ld("y").ld("x");
    b.interesting(
        "P1:r0=1 P2:r0=1 P2:r1=0 | x=1 y=1");
    return b.build();
}

/** Independent reads of independent writes: the two readers must
 *  agree on the order of the writes. */
LitmusTest
makeIriw()
{
    LitmusBuilder b("IRIW");
    b.thread("P0").st("x", 1);
    b.thread("P1").st("y", 1);
    b.thread("P2").ld("x").ld("y");
    b.thread("P3").ld("y").ld("x");
    b.interesting("P2:r0=1 P2:r1=0 P3:r0=1 P3:r1=0 | x=1 y=1");
    return b.build();
}

/** Coherence read-read: two reads of one location must not go
 *  backwards in its coherence order. */
LitmusTest
makeCoRr()
{
    LitmusBuilder b("CoRR");
    b.thread("P0").st("x", 1);
    b.thread("P1").ld("x").ld("x");
    b.interesting("P1:r0=1 P1:r1=0 | x=1");
    return b.build();
}

/** Coherence write-write: program-order stores of one thread must
 *  settle in program order against a concurrent writer. */
LitmusTest
makeCoWw()
{
    LitmusBuilder b("CoWW");
    b.thread("P0").st("x", 1).st("x", 2);
    b.thread("P1").st("x", 3);
    b.interesting("| x=1");
    return b.build();
}

/** 2+2W: the cross-written pair must not end with both first
 *  writes surviving. */
LitmusTest
make2p2w()
{
    LitmusBuilder b("2+2W");
    b.thread("P0").st("x", 1).st("y", 2);
    b.thread("P1").st("y", 1).st("x", 2);
    b.interesting("| x=1 y=1");
    return b.build();
}

/** R: a write racing a write-then-read — the reader must not miss
 *  the other thread's first write if its own write lost. */
LitmusTest
makeR()
{
    LitmusBuilder b("R");
    b.thread("P0").st("x", 1).st("y", 1);
    b.thread("P1").st("y", 2).ld("x");
    b.interesting("P1:r0=0 | x=1 y=2");
    return b.build();
}

/** S: a write-then-write racing a read-then-write — the early
 *  write must not survive a writer the reader observed. */
LitmusTest
makeS()
{
    LitmusBuilder b("S");
    b.thread("P0").st("x", 2).st("y", 1);
    b.thread("P1").ld("y").st("x", 1);
    b.interesting("P1:r0=1 | x=2 y=1");
    return b.build();
}

} // namespace

const std::vector<LitmusTest> &
shapeLibrary()
{
    static const std::vector<LitmusTest> shapes = {
        makeMp(),  makeSb(),   makeLb(), makeWrc(), makeIriw(),
        makeCoRr(), makeCoWw(), make2p2w(), makeR(), makeS(),
    };
    return shapes;
}

const LitmusTest *
findShape(const std::string &name)
{
    for (const LitmusTest &t : shapeLibrary()) {
        if (t.name == name)
            return &t;
    }
    return nullptr;
}

std::vector<std::string>
shapeNames()
{
    std::vector<std::string> names;
    for (const LitmusTest &t : shapeLibrary())
        names.push_back(t.name);
    return names;
}

} // namespace svc::litmus
