/**
 * @file
 * The SC-explainability oracle: computes a litmus test's allowed
 * outcome set by exhaustive enumeration instead of hand-written
 * expectations.
 *
 * Two granularities matter:
 *
 *  - Task-serial enumeration executes whole threads atomically in
 *    every permutation (n! serial orders). This is the speculative
 *    versioning contract — the paper's claim is that *any*
 *    execution, however wild the speculation, is explainable by a
 *    sequential order of the tasks — so it is the set every
 *    observed outcome is checked against.
 *
 *  - Per-operation SC enumeration interleaves individual accesses
 *    (program order preserved per thread). This is classical
 *    sequential consistency — a strict superset of the task-serial
 *    set — reported alongside so diagnostics can say whether a
 *    forbidden outcome is merely "task atomicity broken" (inside
 *    SC, outside task-serial) or fully non-SC.
 *
 * Both enumerations run a functional model over a location→value
 * map; litmus programs are tiny (≤ 4 threads × ≤ 4 ops), so the
 * state space is trivially exhaustible.
 */

#ifndef SVC_LITMUS_ORACLE_HH
#define SVC_LITMUS_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/litmus.hh"

namespace svc::litmus
{

/** A task order: order[i] is the original thread index that runs
 *  as the i'th speculative task. */
using TaskOrder = std::vector<unsigned>;

/** @return n! for the test's thread count. */
std::uint64_t numTaskOrders(const LitmusTest &test);

/** @return the @p index'th lexicographic permutation of threads. */
TaskOrder taskOrderByIndex(const LitmusTest &test,
                           std::uint64_t index);

/** Render an order as "P1->P0->P2". */
std::string taskOrderString(const LitmusTest &test,
                            const TaskOrder &order);

/**
 * Execute @p test functionally with whole threads run atomically
 * in @p order. The result's regs/mem are indexed by *original*
 * thread/location index (see Outcome), so results from different
 * orders are directly comparable.
 */
Outcome serialOutcome(const LitmusTest &test, const TaskOrder &order);

/** The task-serial allowed set plus one explaining order per
 *  outcome (the explainability witness for diagnostics). */
class AllowedSet
{
  public:
    bool contains(const Outcome &o) const;

    /** An order explaining @p o, or nullptr if not allowed. */
    const TaskOrder *witness(const Outcome &o) const;

    const std::vector<Outcome> &outcomes() const { return sorted; }

    /** "{P0:... | x=..} <= P0->P1 ..." multi-line listing. */
    std::string describe(const LitmusTest &test) const;

    /** Enumerate all n! serial task orders of @p test. */
    static AllowedSet enumerate(const LitmusTest &test);

  private:
    std::vector<Outcome> sorted;        ///< unique, ascending
    std::vector<TaskOrder> explainedBy; ///< parallel to sorted
};

/**
 * Classical SC: every per-operation interleaving that preserves
 * each thread's program order. @return the sorted unique outcome
 * set (a superset of the task-serial set).
 */
std::vector<Outcome> enumerateScOutcomes(const LitmusTest &test);

} // namespace svc::litmus

#endif // SVC_LITMUS_ORACLE_HH
