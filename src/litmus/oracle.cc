#include "litmus/oracle.hh"

#include <algorithm>
#include <set>

#include "common/log.hh"

namespace svc::litmus
{

namespace
{

/** Functional execution state: location values + observations. */
struct ExecState
{
    std::vector<Value> mem;  ///< per location
    std::vector<Value> regs; ///< per load, thread-major
    /** Base index of each thread's observation block. */
    std::vector<unsigned> regBase;

    explicit ExecState(const LitmusTest &test)
        : mem(test.locations.size(), 0),
          regs(test.totalLoads(), 0)
    {
        unsigned base = 0;
        for (const LitmusThread &t : test.threads) {
            regBase.push_back(base);
            base += t.numLoads;
        }
    }

    void
    apply(unsigned thread, const LitmusOp &op)
    {
        if (op.isStore)
            mem[op.loc] = op.value;
        else
            regs[regBase[thread] + op.obs] = mem[op.loc];
    }

    Outcome
    outcome() const
    {
        Outcome o;
        o.regs = regs;
        o.mem = mem;
        return o;
    }
};

} // namespace

std::uint64_t
numTaskOrders(const LitmusTest &test)
{
    std::uint64_t f = 1;
    for (std::size_t i = 2; i <= test.threads.size(); ++i)
        f *= i;
    return f;
}

TaskOrder
taskOrderByIndex(const LitmusTest &test, std::uint64_t index)
{
    const unsigned n = static_cast<unsigned>(test.threads.size());
    std::vector<unsigned> pool;
    for (unsigned i = 0; i < n; ++i)
        pool.push_back(i);
    std::uint64_t k = index % numTaskOrders(test);
    // Factorial number system: digit i selects from the remaining
    // pool, giving the k'th lexicographic permutation.
    std::uint64_t radix = numTaskOrders(test);
    TaskOrder order;
    for (unsigned i = 0; i < n; ++i) {
        radix /= (n - i);
        const std::size_t pick = static_cast<std::size_t>(k / radix);
        k %= radix;
        order.push_back(pool[pick]);
        pool.erase(pool.begin() +
                   static_cast<std::ptrdiff_t>(pick));
    }
    return order;
}

std::string
taskOrderString(const LitmusTest &test, const TaskOrder &order)
{
    std::string s;
    for (unsigned t : order) {
        if (!s.empty())
            s += "->";
        s += test.threads[t].name;
    }
    return s;
}

Outcome
serialOutcome(const LitmusTest &test, const TaskOrder &order)
{
    if (order.size() != test.threads.size())
        fatal("litmus %s: order has %zu entries for %zu threads",
              test.name.c_str(), order.size(),
              test.threads.size());
    ExecState st(test);
    for (unsigned t : order) {
        for (const LitmusOp &op : test.threads[t].ops)
            st.apply(t, op);
    }
    return st.outcome();
}

bool
AllowedSet::contains(const Outcome &o) const
{
    return std::binary_search(sorted.begin(), sorted.end(), o);
}

const TaskOrder *
AllowedSet::witness(const Outcome &o) const
{
    const auto it =
        std::lower_bound(sorted.begin(), sorted.end(), o);
    if (it == sorted.end() || !(*it == o))
        return nullptr;
    return &explainedBy[static_cast<std::size_t>(
        it - sorted.begin())];
}

std::string
AllowedSet::describe(const LitmusTest &test) const
{
    std::string s;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        s += "  {" + outcomeString(test, sorted[i]) + "}  <=  " +
             taskOrderString(test, explainedBy[i]) + '\n';
    }
    return s;
}

AllowedSet
AllowedSet::enumerate(const LitmusTest &test)
{
    struct Entry
    {
        Outcome o;
        TaskOrder order;
        bool operator<(const Entry &e) const { return o < e.o; }
    };
    std::set<Entry> found;
    const std::uint64_t n = numTaskOrders(test);
    for (std::uint64_t i = 0; i < n; ++i) {
        const TaskOrder order = taskOrderByIndex(test, i);
        found.insert({serialOutcome(test, order), order});
    }
    AllowedSet set;
    for (const Entry &e : found) {
        set.sorted.push_back(e.o);
        set.explainedBy.push_back(e.order);
    }
    return set;
}

namespace
{

void
scDfs(const LitmusTest &test, ExecState &st,
      std::vector<std::size_t> &pc, std::set<Outcome> &out)
{
    bool any = false;
    for (unsigned t = 0; t < test.threads.size(); ++t) {
        const auto &ops = test.threads[t].ops;
        if (pc[t] >= ops.size())
            continue;
        any = true;
        const LitmusOp &op = ops[pc[t]];
        // Save-apply-recurse-restore: stores clobber one memory
        // cell, loads one observation slot.
        const Value saved = op.isStore
                                ? st.mem[op.loc]
                                : st.regs[st.regBase[t] + op.obs];
        st.apply(t, op);
        ++pc[t];
        scDfs(test, st, pc, out);
        --pc[t];
        if (op.isStore)
            st.mem[op.loc] = saved;
        else
            st.regs[st.regBase[t] + op.obs] = saved;
    }
    if (!any)
        out.insert(st.outcome());
}

} // namespace

std::vector<Outcome>
enumerateScOutcomes(const LitmusTest &test)
{
    ExecState st(test);
    std::vector<std::size_t> pc(test.threads.size(), 0);
    std::set<Outcome> out;
    scDfs(test, st, pc, out);
    return {out.begin(), out.end()};
}

} // namespace svc::litmus
