/**
 * @file
 * The iterated litmus runner: executes one shape thousands of times
 * across task permutations, location strides and (optionally) fault
 * injections, histograms the observed outcomes, and checks every
 * single one against the enumeration oracle.
 *
 * Two execution rails, selected by EngineConfig::mode:
 *
 *  - Processor: the shape is lowered to a task-annotated MiniISA
 *    program and run through the full multiscalar + SVC (or ARB)
 *    stack — the rail where every FaultKind and the staged recovery
 *    ladder apply, exactly as in the recovery matrix.
 *
 *  - Replay: the shape is lowered to a per-thread access stream and
 *    driven through the speculative replay driver with a seeded
 *    interleaving — cheap volume, a different speculation schedule
 *    per iteration (transient faults only; corruptions need the
 *    processor's tick hook).
 *
 * Both rails fix the sequential task order per iteration, so the
 * correctness contract is two-tiered: the outcome must equal the
 * serial outcome of *that* order (the strict check), and any
 * deviation is classified against the full task-serial allowed set
 * and the per-op SC set to say exactly how bad it is — order
 * divergence, task atomicity broken, or fully non-SC.
 */

#ifndef SVC_LITMUS_ENGINE_HH
#define SVC_LITMUS_ENGINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "litmus/oracle.hh"
#include "mem/fault_injector.hh"
#include "recovery/recovery_manager.hh"
#include "svc/design.hh"

namespace svc::litmus
{

/** Which memory system executes the shape. */
enum class Backend
{
    Svc, ///< one of the six SVC design points
    Arb  ///< the ARB baseline (no fault hooks)
};

/** Which rail executes the shape (see file comment). */
enum class ExecMode
{
    Processor,
    Replay
};

/** Fault campaign across the iteration space. */
enum class FaultMode
{
    None,   ///< fault-free
    Single, ///< EngineConfig::faultKind on every iteration
    Mix     ///< cycle through every applicable kind (plus none)
};

/** One litmus campaign's knobs. */
struct EngineConfig
{
    Backend backend = Backend::Svc;
    SvcDesign design = SvcDesign::Final;
    ExecMode mode = ExecMode::Processor;
    std::uint64_t iterations = 1000;
    /** Base seed; per-iteration seeds derive deterministically. */
    std::uint64_t seed = 1;
    FaultMode faultMode = FaultMode::None;
    FaultKind faultKind = FaultKind::BusNack; ///< FaultMode::Single
    /**
     * Attach the RecoveryManager (policy ladder at its defaults) so
     * corruptions are repaired before they can leak into an
     * outcome. Processor+Svc only; ignored elsewhere.
     */
    bool recover = true;
    /** Replay rail: PUs of the replay driver. */
    unsigned numPus = 4;
    /** Cap on retained violation diagnostics. */
    std::size_t maxDiagnostics = 8;
};

/** One forbidden (or malformed) observation, fully explained. */
struct LitmusViolation
{
    std::uint64_t iteration = 0;
    std::uint64_t permIndex = 0;
    /**
     * Classification:
     *  - "no-progress": the run did not halt / replay stalled;
     *  - "observer-checksum": the observer task's checksum does not
     *    fold from the observations (torn observer state);
     *  - "order-divergence": outcome is serially explainable, but
     *    by a *different* order than the program's task sequence;
     *  - "forbidden-sc-only": outside the task-serial set but
     *    inside per-op SC — task atomicity was broken;
     *  - "forbidden-non-sc": outside even per-op SC.
     */
    std::string kind;
    std::string order;    ///< the iteration's task order
    std::string observed; ///< outcomeString() of what happened
    std::string expected; ///< serial outcome of that order
    std::string detail;   ///< witness / classification notes
};

/** Everything one campaign reports. */
struct ShapeReport
{
    std::string shape;
    std::uint64_t iterations = 0;
    /** outcomeString() -> times observed. */
    std::map<std::string, std::uint64_t> histogram;
    std::uint64_t violationCount = 0;
    std::vector<LitmusViolation> violations; ///< first maxDiagnostics
    /** Task-serial allowed set size (the oracle's). */
    std::size_t allowedSize = 0;
    /** Per-op SC set size (diagnostic superset). */
    std::size_t scSize = 0;
    /** Distinct allowed outcomes actually observed. */
    std::size_t allowedCovered = 0;
    std::uint64_t squashes = 0; ///< dependence-violation squashes
    std::uint64_t injected = 0; ///< faults actually injected
    std::uint64_t episodes = 0; ///< recovery episodes handled
    bool ok = false; ///< ran to completion with zero violations
};

/** Run one campaign. fatal() on unsupported combinations (faults on
 *  ARB; corruption kinds on the replay rail). */
ShapeReport runShape(const LitmusTest &test, const EngineConfig &cfg);

/** Render @p r as a compact human-readable block (CLI/test logs). */
std::string reportString(const ShapeReport &r);

} // namespace svc::litmus

#endif // SVC_LITMUS_ENGINE_HH
