#include "litmus/codegen.hh"

#include "common/log.hh"
#include "isa/builder.hh"
#include "mem/main_memory.hh"

namespace svc::litmus
{

namespace
{

/** Register plan shared by every task (tasks are independent:
 *  each recomputes its own addresses, so the only inter-task
 *  dependences are the memory conflicts under test). */
constexpr isa::Reg kRegLocs = 1; ///< base address of the locations
constexpr isa::Reg kRegVal = 2;  ///< store payload
constexpr isa::Reg kRegTmp = 3;  ///< load destination
constexpr isa::Reg kRegObs = 4;  ///< base address of the obs area
constexpr isa::Reg kRegSum = 5;  ///< observer checksum accumulator
constexpr isa::Reg kRegMul = 6;  ///< checksum mixing constant

/** Observation-slot base index of each original thread. */
std::vector<unsigned>
obsBases(const LitmusTest &test)
{
    std::vector<unsigned> base;
    unsigned n = 0;
    for (const LitmusThread &t : test.threads) {
        base.push_back(n);
        n += t.numLoads;
    }
    return base;
}

} // namespace

Addr
locAddr(unsigned loc, const CodegenOptions &opts)
{
    // Matches ProgramBuilder's default data base, so program and
    // stream lowerings agree on addresses.
    return 0x100000 + static_cast<Addr>(loc) * opts.locStride;
}

LitmusProgram
buildProgram(const LitmusTest &test, const TaskOrder &order,
             const CodegenOptions &opts)
{
    if (order.size() != test.threads.size())
        fatal("litmus %s: order/thread count mismatch",
              test.name.c_str());

    const unsigned nLocs =
        static_cast<unsigned>(test.locations.size());
    const unsigned nLoads = test.totalLoads();
    const std::vector<unsigned> base = obsBases(test);

    isa::ProgramBuilder b;
    // The locations come first so they land at the fixed
    // locAddr() addresses shared with the stream lowering.
    isa::Label locs =
        b.allocData("litmus.locs", nLocs * opts.locStride);
    // Obs area: [checksum][loads (thread-major)][final per loc].
    isa::Label obs =
        b.allocData("litmus.obs", (1 + nLoads + nLocs) * 4);

    std::vector<isa::Label> entries;
    for (std::size_t i = 0; i < order.size(); ++i) {
        entries.push_back(b.newLabel(
            "task." + test.threads[order[i]].name));
    }
    isa::Label fini = b.newLabel("fini");

    for (std::size_t i = 0; i < order.size(); ++i) {
        const unsigned t = order[i];
        const LitmusThread &th = test.threads[t];
        b.bind(entries[i]);
        b.beginTask(th.name);
        b.taskTargets(
            {i + 1 < order.size() ? entries[i + 1] : fini});
        b.la(kRegLocs, locs);
        if (th.numLoads)
            b.la(kRegObs, obs);
        for (const LitmusOp &op : th.ops) {
            const std::int32_t off =
                static_cast<std::int32_t>(op.loc * opts.locStride);
            if (op.isStore) {
                b.li(kRegVal, op.value);
                b.sw(kRegVal, off, kRegLocs);
            } else {
                b.lw(kRegTmp, off, kRegLocs);
                b.sw(kRegTmp,
                     static_cast<std::int32_t>(
                         (1 + base[t] + op.obs) * 4),
                     kRegObs);
            }
        }
        // Fall through into the next task's entry.
    }

    // Observer task: snapshot every location's final value and fold
    // the whole obs area into the checksum word the harnesses
    // verify against the sequential interpreter.
    b.bind(fini);
    b.beginTask("fini");
    b.la(kRegLocs, locs);
    b.la(kRegObs, obs);
    b.li(kRegMul, 31);
    b.li(kRegSum, 0);
    for (unsigned l = 0; l < nLocs; ++l) {
        b.lw(kRegTmp,
             static_cast<std::int32_t>(l * opts.locStride),
             kRegLocs);
        b.sw(kRegTmp,
             static_cast<std::int32_t>((1 + nLoads + l) * 4),
             kRegObs);
    }
    for (unsigned w = 0; w < nLoads + nLocs; ++w) {
        b.lw(kRegTmp, static_cast<std::int32_t>((1 + w) * 4),
             kRegObs);
        b.mul(kRegSum, kRegSum, kRegMul);
        b.add(kRegSum, kRegSum, kRegTmp);
    }
    b.sw(kRegSum, 0, kRegObs);
    b.halt();

    LitmusProgram out;
    out.locsBase = b.addrOf(locs);
    out.obsBase = b.addrOf(obs);
    out.locStride = opts.locStride;
    out.checkBase = out.obsBase;
    out.checkLen = (1 + nLoads + nLocs) * 4;
    out.program = b.finalize();
    if (out.locsBase != locAddr(0, opts))
        fatal("litmus %s: layout drifted from locAddr()",
              test.name.c_str());
    return out;
}

std::vector<std::vector<workloads::TraceOp>>
buildStream(const LitmusTest &test, const TaskOrder &order,
            const CodegenOptions &opts)
{
    std::vector<std::vector<workloads::TraceOp>> threads;
    for (unsigned t : order) {
        std::vector<workloads::TraceOp> ops;
        for (const LitmusOp &op : test.threads[t].ops) {
            workloads::TraceOp to;
            to.isStore = op.isStore;
            to.addr = locAddr(op.loc, opts);
            to.size = 4;
            to.value = op.isStore ? op.value : 0;
            ops.push_back(to);
        }
        threads.push_back(std::move(ops));
    }
    return threads;
}

Outcome
extractOutcome(const LitmusTest &test, const LitmusProgram &prog,
               const MainMemory &mem)
{
    const unsigned nLoads = test.totalLoads();
    Outcome o;
    for (unsigned r = 0; r < nLoads; ++r)
        o.regs.push_back(mem.readWord(prog.obsBase + (1 + r) * 4));
    for (unsigned l = 0;
         l < static_cast<unsigned>(test.locations.size()); ++l) {
        o.mem.push_back(
            mem.readWord(prog.obsBase + (1 + nLoads + l) * 4));
    }
    return o;
}

Outcome
streamOutcome(
    const LitmusTest &test, const TaskOrder &order,
    const std::vector<std::vector<std::uint64_t>> &capturedLoads,
    const MainMemory &mem, const CodegenOptions &opts)
{
    if (capturedLoads.size() != order.size())
        fatal("litmus %s: replay captured %zu threads, expected "
              "%zu", test.name.c_str(), capturedLoads.size(),
              order.size());
    const std::vector<unsigned> base = obsBases(test);
    Outcome o;
    o.regs.assign(test.totalLoads(), 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
        const unsigned t = order[i];
        if (capturedLoads[i].size() != test.threads[t].numLoads)
            fatal("litmus %s: thread %s committed %zu loads, "
                  "program order has %u",
                  test.name.c_str(),
                  test.threads[t].name.c_str(),
                  capturedLoads[i].size(),
                  test.threads[t].numLoads);
        for (std::size_t k = 0; k < capturedLoads[i].size(); ++k) {
            o.regs[base[t] + k] =
                static_cast<Value>(capturedLoads[i][k]);
        }
    }
    for (unsigned l = 0;
         l < static_cast<unsigned>(test.locations.size()); ++l)
        o.mem.push_back(mem.readWord(locAddr(l, opts)));
    return o;
}

} // namespace svc::litmus
