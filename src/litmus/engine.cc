#include "litmus/engine.hh"

#include <algorithm>
#include <memory>
#include <set>

#include "arb/arb_system.hh"
#include "common/invariants.hh"
#include "common/log.hh"
#include "litmus/codegen.hh"
#include "mem/main_memory.hh"
#include "multiscalar/processor.hh"
#include "svc/corruptor.hh"
#include "svc/system.hh"
#include "trace_io/trace_replayer.hh"
#include "workloads/stimulus.hh"

namespace svc::litmus
{

namespace
{

bool
isCorruption(FaultKind kind)
{
    return kind == FaultKind::CorruptVolPointer ||
           kind == FaultKind::CorruptMask ||
           kind == FaultKind::CorruptData ||
           kind == FaultKind::CorruptVolCache;
}

/** Same transient rates as the fault/recovery matrices. */
FaultConfig
transientConfig(FaultKind kind, std::uint64_t seed)
{
    FaultConfig fcfg;
    fcfg.seed = seed * 977 + static_cast<std::uint64_t>(kind);
    switch (kind) {
      case FaultKind::BusNack:
        fcfg.nackPercent = 40;
        break;
      case FaultKind::SnoopDelay:
        fcfg.delayPercent = 40;
        fcfg.delayCycles = 5;
        break;
      case FaultKind::WritebackStall:
        fcfg.wbStallPercent = 60;
        break;
      case FaultKind::SpuriousSquash:
        fcfg.squashPer10k = 30;
        fcfg.maxInjections = 6;
        break;
      default:
        fcfg.seed = seed * 7919 + 1; // corruption: RNG source only
        break;
    }
    return fcfg;
}

/** Per-iteration variation, decoded deterministically from the
 *  iteration index so any campaign is exactly reproducible. */
struct IterPlan
{
    TaskOrder order;
    std::uint64_t permIndex = 0;
    CodegenOptions opts;
    bool faulted = false;
    FaultKind kind = FaultKind::BusNack;
    std::uint64_t seed = 0;
};

IterPlan
planFor(const LitmusTest &test, const EngineConfig &cfg,
        std::uint64_t iter)
{
    IterPlan p;
    const std::uint64_t nPerms = numTaskOrders(test);
    p.permIndex = iter % nPerms;
    p.order = taskOrderByIndex(test, p.permIndex);
    // Alternate per-line (64) and packed/false-sharing (4) layouts
    // once every full permutation sweep.
    p.opts.locStride = ((iter / nPerms) % 2) ? 4u : 64u;
    p.seed = cfg.seed * 1000003 + iter * 7919 + 13;

    switch (cfg.faultMode) {
      case FaultMode::None:
        break;
      case FaultMode::Single:
        p.faulted = true;
        p.kind = cfg.faultKind;
        break;
      case FaultMode::Mix: {
        // Slot 0 of each cycle is fault-free; the replay rail has
        // no tick hook, so it mixes transient kinds only.
        const unsigned kinds =
            cfg.mode == ExecMode::Replay ? 4u : kNumFaultKinds;
        const std::uint64_t slot =
            (iter / (nPerms * 2)) % (kinds + 1);
        if (slot > 0) {
            p.faulted = true;
            p.kind = static_cast<FaultKind>(slot - 1);
        }
        break;
      }
    }
    return p;
}

/** What one iteration hands back for classification. */
struct IterOut
{
    bool completed = false;
    std::string failure; ///< when !completed
    Outcome outcome;
    bool hasChecksum = false; ///< processor rail only
    Value checksum = 0;
    std::uint64_t squashes = 0;
    std::uint64_t injected = 0;
    std::uint64_t episodes = 0;
};

IterOut
runProcessorIter(const LitmusTest &test, const EngineConfig &cfg,
                 const IterPlan &plan)
{
    IterOut out;
    const LitmusProgram prog =
        buildProgram(test, plan.order, plan.opts);

    MainMemory mem;
    std::unique_ptr<SpecMem> sys;
    SvcSystem *svcSys = nullptr;
    if (cfg.backend == Backend::Arb) {
        sys = std::make_unique<ArbSystem>(ArbTimingConfig{}, mem);
    } else {
        auto s = std::make_unique<SvcSystem>(makeDesign(cfg.design),
                                             mem);
        svcSys = s.get();
        sys = std::move(s);
    }
    prog.program.loadInto(mem);

    FaultInjector inj(transientConfig(plan.kind, plan.seed));
    const bool transient = plan.faulted && !isCorruption(plan.kind);
    const bool corrupting = plan.faulted && isCorruption(plan.kind);
    if (transient && svcSys)
        svcSys->attachFaultInjector(&inj);

    InvariantEngine eng;
    const bool recovered = cfg.recover && svcSys != nullptr;
    if (recovered)
        svcSys->attachInvariants(eng);

    MultiscalarConfig mcfg;
    mcfg.maxCycles = 2'000'000;
    mcfg.watchdogFatal = false;
    Processor cpu(mcfg, prog.program, *sys);

    std::unique_ptr<RecoveryManager> rm;
    if (recovered) {
        RecoveryConfig rcfg; // defaults: full degrade ladder
        rm = std::make_unique<RecoveryManager>(
            rcfg, cpu, *svcSys, mem, eng,
            transient ? &inj : nullptr, 0x117u + plan.seed);
    }
    std::unique_ptr<SvcCorruptor> corruptor;
    if (corrupting && svcSys) {
        corruptor =
            std::make_unique<SvcCorruptor>(svcSys->protocol(), inj);
    }

    // A litmus program is a few dozen cycles long: one corruption,
    // armed early and retried each cycle until live speculative
    // state is eligible, is the whole schedule.
    Counter applied = 0;
    bool pending = corruptor != nullptr;
    const Cycle first = 10 + (plan.seed % 7);
    cpu.setTickHook([&](Cycle at) {
        if (pending && at >= first &&
            corruptor->corrupt(plan.kind).injected) {
            pending = false;
            ++applied;
            // Detect before first use (recovery rail only): a
            // corrupt byte laundered by a later store is invisible
            // to every checker.
            if (recovered)
                eng.runChecks(at);
        }
        if (rm)
            rm->onTick(at);
    });

    const RunStats rs = cpu.run();
    sys->finalizeMemory();

    out.completed = rs.halted;
    if (!rs.halted) {
        out.failure = rs.watchdogTripped ? "watchdog tripped"
                                         : "cycle cap exceeded";
    }
    out.outcome = extractOutcome(test, prog, mem);
    out.hasChecksum = true;
    out.checksum = static_cast<Value>(mem.readWord(prog.obsBase));
    out.squashes = rs.violationSquashes;
    out.injected = transient ? inj.injected(plan.kind) : applied;
    out.episodes = rm ? rm->nEpisodes : 0;
    return out;
}

IterOut
runReplayIter(const LitmusTest &test, const EngineConfig &cfg,
              const IterPlan &plan)
{
    IterOut out;
    workloads::VectorStream stream(
        buildStream(test, plan.order, plan.opts),
        /*has_load_values=*/false);

    MainMemory mem; // zeroed: litmus locations all start at 0
    std::unique_ptr<SpecMem> sys;
    SvcSystem *svcSys = nullptr;
    if (cfg.backend == Backend::Arb) {
        sys = std::make_unique<ArbSystem>(ArbTimingConfig{}, mem);
    } else {
        auto s = std::make_unique<SvcSystem>(makeDesign(cfg.design),
                                             mem);
        svcSys = s.get();
        sys = std::move(s);
    }

    FaultInjector inj(transientConfig(plan.kind, plan.seed));
    const bool transient = plan.faulted && !isCorruption(plan.kind);
    if (transient && svcSys)
        svcSys->attachFaultInjector(&inj);

    trace_io::ReplayConfig rcfg;
    rcfg.numPus = cfg.numPus;
    rcfg.interleaveSeed = plan.seed;
    rcfg.checkLoadValues = false;
    rcfg.captureLoadValues = true;
    const trace_io::ReplayResult r =
        trace_io::replayStream(stream, *sys, rcfg);
    sys->finalizeMemory();

    out.completed = r.ok;
    if (!r.ok)
        out.failure = r.error;
    else
        out.outcome = streamOutcome(test, plan.order,
                                    r.committedLoads, mem,
                                    plan.opts);
    out.squashes = r.squashes;
    out.injected = transient ? inj.injected(plan.kind) : 0;
    return out;
}

/** The observer task's checksum discipline (codegen.cc fini). */
Value
foldOutcome(const Outcome &o)
{
    Value sum = 0;
    for (Value v : o.regs)
        sum = sum * 31 + v;
    for (Value v : o.mem)
        sum = sum * 31 + v;
    return sum;
}

} // namespace

ShapeReport
runShape(const LitmusTest &test, const EngineConfig &cfg)
{
    if (cfg.backend == Backend::Arb && cfg.faultMode != FaultMode::None)
        fatal("litmus %s: the ARB baseline has no fault hooks",
              test.name.c_str());
    if (cfg.mode == ExecMode::Replay &&
        cfg.faultMode == FaultMode::Single &&
        isCorruption(cfg.faultKind)) {
        fatal("litmus %s: corruption kinds need the processor "
              "rail's tick hook, not the replay rail",
              test.name.c_str());
    }

    ShapeReport rep;
    rep.shape = test.name;
    const AllowedSet allowed = AllowedSet::enumerate(test);
    const std::vector<Outcome> sc = enumerateScOutcomes(test);
    rep.allowedSize = allowed.outcomes().size();
    rep.scSize = sc.size();

    // serialOutcome() per permutation, computed once.
    std::map<std::uint64_t, Outcome> serialByPerm;
    std::set<Outcome> seenAllowed;

    for (std::uint64_t iter = 0; iter < cfg.iterations; ++iter) {
        const IterPlan plan = planFor(test, cfg, iter);
        const IterOut io = cfg.mode == ExecMode::Processor
                               ? runProcessorIter(test, cfg, plan)
                               : runReplayIter(test, cfg, plan);
        ++rep.iterations;
        rep.squashes += io.squashes;
        rep.injected += io.injected;
        rep.episodes += io.episodes;

        auto flag = [&](const std::string &kind,
                        const std::string &detail) {
            ++rep.violationCount;
            if (rep.violations.size() >= cfg.maxDiagnostics)
                return;
            LitmusViolation v;
            v.iteration = iter;
            v.permIndex = plan.permIndex;
            v.kind = kind;
            v.order = taskOrderString(test, plan.order);
            v.observed = outcomeString(test, io.outcome);
            auto it = serialByPerm.find(plan.permIndex);
            if (it != serialByPerm.end())
                v.expected = outcomeString(test, it->second);
            v.detail = detail;
            rep.violations.push_back(std::move(v));
        };

        if (!io.completed) {
            flag("no-progress", io.failure);
            continue;
        }

        auto it = serialByPerm.find(plan.permIndex);
        if (it == serialByPerm.end()) {
            it = serialByPerm
                     .emplace(plan.permIndex,
                              serialOutcome(test, plan.order))
                     .first;
        }
        const Outcome &serial = it->second;

        rep.histogram[outcomeString(test, io.outcome)]++;
        if (allowed.contains(io.outcome))
            seenAllowed.insert(io.outcome);

        if (io.hasChecksum &&
            io.checksum != foldOutcome(io.outcome)) {
            flag("observer-checksum",
                 "checksum word does not fold from the recorded "
                 "observations — observer state is torn");
            continue;
        }

        if (!allowed.contains(io.outcome)) {
            const bool inSc =
                std::binary_search(sc.begin(), sc.end(), io.outcome);
            std::string detail =
                inSc ? "inside per-op SC: task atomicity was broken"
                     : "outside even per-op SC";
            if (!test.interesting.empty() &&
                outcomeString(test, io.outcome) == test.interesting)
                detail += " (the classic weak-memory outcome)";
            flag(inSc ? "forbidden-sc-only" : "forbidden-non-sc",
                 detail);
        } else if (!(io.outcome == serial)) {
            const TaskOrder *w = allowed.witness(io.outcome);
            flag("order-divergence",
                 "explained only by " +
                     (w ? taskOrderString(test, *w)
                        : std::string("<none>")) +
                     ", not the program's task order");
        }
    }

    rep.allowedCovered = seenAllowed.size();
    rep.ok = rep.iterations == cfg.iterations &&
             rep.violationCount == 0;
    return rep;
}

std::string
reportString(const ShapeReport &r)
{
    std::string s = r.shape + ": " +
                    std::to_string(r.iterations) + " iterations, " +
                    std::to_string(r.histogram.size()) +
                    " distinct outcomes (allowed " +
                    std::to_string(r.allowedSize) + ", covered " +
                    std::to_string(r.allowedCovered) + ", SC " +
                    std::to_string(r.scSize) + "), " +
                    std::to_string(r.violationCount) +
                    " violations\n";
    for (const auto &[key, count] : r.histogram) {
        s += "  " + std::to_string(count) + "x {" + key + "}\n";
    }
    for (const LitmusViolation &v : r.violations) {
        s += "  VIOLATION [" + v.kind + "] iter " +
             std::to_string(v.iteration) + " order " + v.order +
             "\n    observed {" + v.observed + "}\n    expected {" +
             v.expected + "}\n    " + v.detail + "\n";
    }
    return s;
}

} // namespace svc::litmus
