#include "litmus/litmus.hh"

#include "common/log.hh"

namespace svc::litmus
{

unsigned
LitmusTest::totalLoads() const
{
    unsigned n = 0;
    for (const LitmusThread &t : threads)
        n += t.numLoads;
    return n;
}

std::string
outcomeString(const LitmusTest &test, const Outcome &o)
{
    std::string s;
    std::size_t r = 0;
    for (const LitmusThread &t : test.threads) {
        for (unsigned i = 0; i < t.numLoads; ++i, ++r) {
            if (!s.empty())
                s += ' ';
            s += t.name + ":r" + std::to_string(i) + '=';
            s += r < o.regs.size() ? std::to_string(o.regs[r])
                                   : std::string("?");
        }
    }
    if (!test.locations.empty()) {
        s += s.empty() ? "| " : " | ";
        for (std::size_t l = 0; l < test.locations.size(); ++l) {
            if (l)
                s += ' ';
            s += test.locations[l] + '=';
            s += l < o.mem.size() ? std::to_string(o.mem[l])
                                  : std::string("?");
        }
    }
    return s;
}

LitmusBuilder::LitmusBuilder(const std::string &name)
{
    test.name = name;
}

unsigned
LitmusBuilder::loc(const std::string &name)
{
    for (unsigned i = 0; i < test.locations.size(); ++i) {
        if (test.locations[i] == name)
            return i;
    }
    test.locations.push_back(name);
    return static_cast<unsigned>(test.locations.size() - 1);
}

LitmusBuilder &
LitmusBuilder::thread(const std::string &name)
{
    LitmusThread t;
    t.name = name;
    test.threads.push_back(std::move(t));
    return *this;
}

LitmusBuilder &
LitmusBuilder::st(const std::string &location, Value value)
{
    if (test.threads.empty())
        fatal("litmus %s: st() before thread()", test.name.c_str());
    LitmusOp op;
    op.isStore = true;
    op.loc = loc(location);
    op.value = value;
    test.threads.back().ops.push_back(op);
    return *this;
}

LitmusBuilder &
LitmusBuilder::ld(const std::string &location)
{
    if (test.threads.empty())
        fatal("litmus %s: ld() before thread()", test.name.c_str());
    LitmusThread &t = test.threads.back();
    LitmusOp op;
    op.loc = loc(location);
    op.obs = t.numLoads++;
    t.ops.push_back(op);
    return *this;
}

LitmusBuilder &
LitmusBuilder::interesting(const std::string &description)
{
    test.interesting = description;
    return *this;
}

LitmusTest
LitmusBuilder::build()
{
    if (built)
        fatal("litmus %s: build() called twice", test.name.c_str());
    built = true;
    if (test.threads.empty())
        fatal("litmus %s: no threads", test.name.c_str());
    for (const LitmusThread &t : test.threads) {
        if (t.ops.empty())
            fatal("litmus %s: thread %s has no operations",
                  test.name.c_str(), t.name.c_str());
    }
    return test;
}

} // namespace svc::litmus
