/**
 * @file
 * The classic litmus shapes, instantiated over speculative tasks.
 * Each shape is the canonical adversarial skeleton from the weak
 * memory-model literature; the `interesting` annotation names the
 * outcome a weakly ordered machine could produce and a sequentially
 * explainable one must not. The allowed sets are never written down
 * here — the oracle enumerates them.
 */

#ifndef SVC_LITMUS_SHAPES_HH
#define SVC_LITMUS_SHAPES_HH

#include <string>
#include <vector>

#include "litmus/litmus.hh"

namespace svc::litmus
{

/** All library shapes, in canonical order: MP, SB, LB, WRC, IRIW,
 *  CoRR, CoWW, 2+2W, R, S. */
const std::vector<LitmusTest> &shapeLibrary();

/** @return the library shape named @p name (case-sensitive), or
 *  nullptr when unknown. */
const LitmusTest *findShape(const std::string &name);

/** The library's shape names, in canonical order. */
std::vector<std::string> shapeNames();

} // namespace svc::litmus

#endif // SVC_LITMUS_SHAPES_HH
