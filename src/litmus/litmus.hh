/**
 * @file
 * Litmus-test DSL for adversarial memory-ordering scenarios.
 *
 * A litmus test is a small concurrent skeleton: a handful of named
 * shared locations, a handful of threads each issuing a few loads
 * and stores in program order, and an outcome — the values every
 * load observed plus the final value of every location. The classic
 * shapes (MP, SB, LB, WRC, IRIW, CoRR, ...) are exactly the
 * adversarial patterns a weakly ordered memory system reorders; a
 * speculative versioning system must instead make every execution
 * explainable by a *sequential task order* (the SVC's whole
 * correctness claim), so the allowed outcome set is computed by the
 * enumeration oracle (litmus/oracle.hh), never hand-written.
 *
 * Threads map 1:1 onto speculative tasks. The task order is a
 * permutation of the threads chosen per instantiation, so an
 * iterated campaign observes every serial order the oracle allows —
 * and nothing else, or the run is flagged with a structured
 * diagnostic.
 */

#ifndef SVC_LITMUS_LITMUS_HH
#define SVC_LITMUS_LITMUS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace svc::litmus
{

/** Values stored/observed by litmus operations (MiniISA words). */
using Value = std::uint32_t;

/** One litmus operation: a store of a constant, or a load whose
 *  observed value becomes part of the outcome. */
struct LitmusOp
{
    bool isStore = false;
    unsigned loc = 0; ///< index into LitmusTest::locations
    Value value = 0;  ///< store payload (stores only)
    /** Observation index of a load, dense per thread in program
     *  order (assigned by the builder). */
    unsigned obs = 0;
};

/** One litmus thread (one speculative task). */
struct LitmusThread
{
    std::string name; ///< "P0", "P1", ...
    std::vector<LitmusOp> ops;
    unsigned numLoads = 0;
};

/** A complete litmus test. */
struct LitmusTest
{
    std::string name;
    /** Shared locations ("x", "y", ...); all start at 0. */
    std::vector<std::string> locations;
    std::vector<LitmusThread> threads;
    /**
     * The shape's classic weak-memory outcome (the "exists" clause
     * of the litmus literature), formatted like outcomeString().
     * Purely informational: the allowed set always comes from the
     * oracle, and for every shape in the library this outcome lies
     * outside it.
     */
    std::string interesting;

    /** Total loads across all threads. */
    unsigned totalLoads() const;
};

/**
 * One observed (or enumerated) execution result: every load's
 * value in thread-major program order, then every location's final
 * value. Ordering is by original thread index — independent of the
 * task permutation a run used — so outcomes from different
 * permutations histogram into the same key space.
 */
struct Outcome
{
    std::vector<Value> regs; ///< loads, thread-major program order
    std::vector<Value> mem;  ///< final value per location

    bool operator==(const Outcome &o) const
    {
        return regs == o.regs && mem == o.mem;
    }
    bool
    operator<(const Outcome &o) const
    {
        if (regs != o.regs)
            return regs < o.regs;
        return mem < o.mem;
    }
};

/** Render @p o against @p test: "P1:r0=1 P1:r1=0 | x=1 y=1". */
std::string outcomeString(const LitmusTest &test, const Outcome &o);

/** Fluent construction of LitmusTests (see litmus/shapes.cc). */
class LitmusBuilder
{
  public:
    explicit LitmusBuilder(const std::string &name);

    /** Declare a shared location; @return its index. Locations may
     *  also be declared implicitly by first use. */
    unsigned loc(const std::string &name);

    /** Start a new thread; subsequent st()/ld() append to it. */
    LitmusBuilder &thread(const std::string &name);

    /** Append a store of @p value to @p location. */
    LitmusBuilder &st(const std::string &location, Value value);

    /** Append a load whose observation joins the outcome. */
    LitmusBuilder &ld(const std::string &location);

    /** Attach the classic weak-memory outcome description. */
    LitmusBuilder &interesting(const std::string &description);

    /** Validate and return the finished test (one shot). */
    LitmusTest build();

  private:
    LitmusTest test;
    bool built = false;
};

} // namespace svc::litmus

#endif // SVC_LITMUS_LITMUS_HH
