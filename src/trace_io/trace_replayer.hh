/**
 * @file
 * Speculative trace replay: streams an AccessStream's threads
 * through any SpecMem backend as speculative tasks.
 *
 * Each trace thread becomes one task. The driver fills free PUs
 * with threads in program order, interleaves their accesses
 * pseudo-randomly (seeded, so replay is deterministic), squashes
 * and re-executes on dependence violations, and commits strictly in
 * thread order — the same discipline as the multiscalar sequencer,
 * scaled to millions of threads (all bookkeeping is per-PU, never
 * per-thread).
 *
 * Verification: each thread's surviving load values are folded into
 * a per-thread FNV-1a hash during execution (reset on squash) and
 * folded into a global hash at commit, in commit order — so the
 * result is independent of the speculative interleaving and
 * directly comparable to the recorded run's hash or the sequential
 * oracle. When the stream carries observed load values, per-load
 * mismatches are additionally counted, but only for executions that
 * survive to commit: a to-be-squashed execution legitimately reads
 * values that never occur sequentially.
 */

#ifndef SVC_TRACE_IO_TRACE_REPLAYER_HH
#define SVC_TRACE_IO_TRACE_REPLAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/spec_mem.hh"
#include "workloads/stimulus.hh"

namespace svc::trace_io
{

/** Replay driver knobs. */
struct ReplayConfig
{
    unsigned numPus = 4;
    /** Seed for the (deterministic) access interleaving. */
    std::uint64_t interleaveSeed = 7;
    /** Compare loads against recorded values (when carried). */
    bool checkLoadValues = true;
    /**
     * Keep every committed load value per thread (squashed
     * executions are discarded with their task). Off by default:
     * million-thread traces only need the folded hash; the litmus
     * engine needs the raw observations.
     */
    bool captureLoadValues = false;
};

/** Outcome of a replay. */
struct ReplayResult
{
    bool ok = false;
    std::string error; ///< set when !ok (e.g. no forward progress)

    std::uint64_t threads = 0;
    std::uint64_t ops = 0;    ///< committed accesses
    std::uint64_t loads = 0;  ///< committed loads
    std::uint64_t stores = 0; ///< committed stores
    std::uint64_t squashes = 0;
    std::uint64_t taskReplays = 0; ///< task executions discarded
    std::uint64_t ticks = 0;

    /** Folded commit-order load-value hash (see file comment). */
    std::uint64_t loadValueHash = 0;

    /** Per-thread committed load values, program order (only when
     *  ReplayConfig::captureLoadValues is set). */
    std::vector<std::vector<std::uint64_t>> committedLoads;

    /** Committed loads that differed from the recorded value. */
    std::uint64_t loadMismatches = 0;
    std::uint64_t firstMismatchThread = kNoTask;
    std::uint64_t firstMismatchIndex = 0;
    std::uint64_t firstMismatchExpected = 0;
    std::uint64_t firstMismatchObserved = 0;
};

/**
 * Replay @p stream through @p sys. The caller owns setup (initial
 * memory image) and teardown (finalizeMemory(), final-image
 * hashing). Replaces any violation handler installed on @p sys.
 */
ReplayResult replayStream(const workloads::AccessStream &stream,
                          SpecMem &sys, const ReplayConfig &cfg);

} // namespace svc::trace_io

#endif // SVC_TRACE_IO_TRACE_REPLAYER_HH
