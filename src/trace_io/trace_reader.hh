/**
 * @file
 * Zero-copy SVCTRC1 trace reading.
 *
 * TraceReader validates a trace image up front (magic, version,
 * trailing checksum, every length against the remaining bytes — the
 * snapshot.hh discipline) and then serves records straight out of
 * the underlying bytes: for a file that means an mmap'd read-only
 * mapping, so a multi-gigabyte trace streams through replay without
 * ever being copied into the heap. A prefix-sum thread directory
 * gives O(1) random access to any record, which the replayer needs
 * to restart a thread from its beginning after a dependence-
 * violation squash.
 *
 * makeTraceStimulus() wraps a validated trace in the unified
 * workloads::StimulusSource API, carrying the recorded run's
 * expected hashes for replay verification.
 */

#ifndef SVC_TRACE_IO_TRACE_READER_HH
#define SVC_TRACE_IO_TRACE_READER_HH

#include <memory>
#include <string>
#include <vector>

#include "trace_io/trace_format.hh"
#include "workloads/stimulus.hh"

namespace svc
{
class MainMemory;
} // namespace svc

namespace svc::trace_io
{

/** RAII read-only memory mapping of a whole file. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;
    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;

    /** Map @p path read-only. @return false + message on error. */
    bool open(const std::string &path, std::string &error);

    const std::uint8_t *data() const { return base; }
    std::size_t size() const { return len; }
    bool mapped() const { return base != nullptr; }

  private:
    void reset();

    const std::uint8_t *base = nullptr;
    std::size_t len = 0;
};

/**
 * A validated SVCTRC1 trace. After open()/fromImage() succeeds the
 * metadata, initial image and records are all addressable without
 * further parsing or copying.
 */
class TraceReader
{
  public:
    /** Map and validate @p path. @return false + message on error. */
    bool open(const std::string &path, std::string &error);

    /** Validate an in-memory image (takes ownership of the bytes). */
    bool fromImage(std::vector<std::uint8_t> image,
                   std::string &error);

    const TraceMeta &meta() const { return md; }

    std::uint64_t numThreads() const
    {
        return threadStart.empty() ? 0 : threadStart.size() - 1;
    }

    std::uint64_t totalOps() const
    {
        return threadStart.empty() ? 0 : threadStart.back();
    }

    std::uint64_t
    threadOps(std::uint64_t thread) const
    {
        return threadStart[static_cast<std::size_t>(thread) + 1] -
               threadStart[static_cast<std::size_t>(thread)];
    }

    /** Decode record @p index of @p thread from the mapping. */
    workloads::TraceOp
    op(std::uint64_t thread, std::uint64_t index) const
    {
        const std::uint64_t rec =
            threadStart[static_cast<std::size_t>(thread)] + index;
        return decodeTraceRecord(
            records + static_cast<std::size_t>(rec) *
                          kTraceRecordBytes);
    }

    /**
     * Zero-copy AccessStream over the mapped records. Valid only
     * while this reader is alive.
     */
    std::unique_ptr<workloads::AccessStream> stream() const;

    /** Restore the recorded initial memory image into @p mem. */
    bool restoreInitialImage(MainMemory &mem,
                             std::string &error) const;

  private:
    bool parse(const std::uint8_t *data, std::size_t n,
               std::string &error);

    MappedFile map;
    std::vector<std::uint8_t> owned;
    TraceMeta md;
    const std::uint8_t *image = nullptr; ///< initial-memory bytes
    std::size_t imageLen = 0;
    const std::uint8_t *records = nullptr;
    /** Prefix sums: thread t's records are [start[t], start[t+1]). */
    std::vector<std::uint64_t> threadStart;
};

/**
 * Open @p path as a replayable stimulus. The returned source owns
 * the reader (and its mapping) and carries the recorded run's
 * hashes as expectations. @return nullptr + message on error.
 */
std::unique_ptr<workloads::StimulusSource>
makeTraceStimulus(const std::string &path, std::string &error);

} // namespace svc::trace_io

#endif // SVC_TRACE_IO_TRACE_READER_HH
