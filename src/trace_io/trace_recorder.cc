#include "trace_io/trace_recorder.hh"

#include <utility>

#include "common/snapshot.hh"
#include "mem/main_memory.hh"
#include "workloads/stimulus.hh"

namespace svc::trace_io
{

RecordingSpecMem::RecordingSpecMem(std::unique_ptr<SpecMem> wrapped,
                                   unsigned numPus)
    : wrappedMem(std::move(wrapped)), pending(numPus)
{}

void
RecordingSpecMem::captureInitialImage(const MainMemory &mem)
{
    SnapshotWriter w;
    mem.saveState(w);
    initialImage = w.bytes();
}

std::uint64_t
RecordingSpecMem::committedOps() const
{
    std::uint64_t total = 0;
    for (const auto &ops : threads)
        total += ops.size();
    return total;
}

std::uint64_t
RecordingSpecMem::loadValueHash() const
{
    using workloads::kStimulusHashInit;
    std::uint64_t global = kStimulusHashInit;
    for (const auto &ops : threads) {
        std::uint64_t thread_hash = kStimulusHashInit;
        for (const auto &op : ops) {
            if (!op.isStore)
                thread_hash =
                    workloads::hashLoadValue(thread_hash, op.value);
        }
        global = workloads::foldThreadHash(global, thread_hash);
    }
    return global;
}

bool
RecordingSpecMem::writeTrace(const std::string &path, TraceMeta meta,
                             const MainMemory &finalMem,
                             std::string &error) const
{
    meta.formatVersion = kTraceVersion;
    meta.flags |= kTraceFlagLoadValues;
    meta.loadValueHash = loadValueHash();
    meta.finalMemoryHash = finalMem.hashAll();
    const auto image = buildTraceImage(meta, initialImage, threads);
    return writeTraceFile(path, image, error);
}

void
RecordingSpecMem::setViolationHandler(ViolationFn fn)
{
    wrappedMem->setViolationHandler(std::move(fn));
}

void
RecordingSpecMem::assignTask(PuId pu, TaskSeq seq)
{
    pending[pu].clear();
    wrappedMem->assignTask(pu, seq);
}

bool
RecordingSpecMem::issue(const MemReq &req, DoneFn done)
{
    auto slot = std::make_shared<PendingOp>();
    slot->op.isStore = req.isStore;
    slot->op.addr = req.addr;
    slot->op.size = req.size;
    slot->op.value = req.data;
    const bool accepted = wrappedMem->issue(
        req, [slot, done = std::move(done)](std::uint64_t data) {
            if (!slot->op.isStore)
                slot->op.value = data;
            done(data);
        });
    if (accepted)
        pending[req.pu].push_back(std::move(slot));
    return accepted;
}

void
RecordingSpecMem::commitTask(PuId pu)
{
    std::vector<workloads::TraceOp> ops;
    ops.reserve(pending[pu].size());
    for (const auto &slot : pending[pu])
        ops.push_back(slot->op);
    threads.push_back(std::move(ops));
    pending[pu].clear();
    wrappedMem->commitTask(pu);
}

void
RecordingSpecMem::squashTask(PuId pu)
{
    // Discard: squashed executions never reach the trace. Any
    // still-in-flight callback holds its own slot reference.
    pending[pu].clear();
    wrappedMem->squashTask(pu);
}

void
RecordingSpecMem::tick()
{
    wrappedMem->tick();
}

bool
RecordingSpecMem::busyWithRequests() const
{
    return wrappedMem->busyWithRequests();
}

StatSet
RecordingSpecMem::stats() const
{
    return wrappedMem->stats();
}

const char *
RecordingSpecMem::name() const
{
    return wrappedMem->name();
}

void
RecordingSpecMem::attachTracer(TraceSink *sink)
{
    wrappedMem->attachTracer(sink);
}

void
RecordingSpecMem::finalizeMemory()
{
    wrappedMem->finalizeMemory();
}

double
RecordingSpecMem::missRatio() const
{
    return wrappedMem->missRatio();
}

} // namespace svc::trace_io
