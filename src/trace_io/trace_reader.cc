#include "trace_io/trace_reader.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hh"
#include "common/snapshot.hh"
#include "mem/main_memory.hh"

namespace svc::trace_io
{

// ---- MappedFile -------------------------------------------------

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile &&other) noexcept
    : base(other.base), len(other.len)
{
    other.base = nullptr;
    other.len = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        reset();
        base = other.base;
        len = other.len;
        other.base = nullptr;
        other.len = 0;
    }
    return *this;
}

void
MappedFile::reset()
{
    if (base) {
        ::munmap(const_cast<std::uint8_t *>(base), len);
        base = nullptr;
        len = 0;
    }
}

bool
MappedFile::open(const std::string &path, std::string &error)
{
    reset();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "trace: cannot open '" + path +
                "': " + std::strerror(errno);
        return false;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        error = "trace: cannot stat '" + path +
                "': " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (st.st_size <= 0) {
        error = "trace: '" + path + "' is empty";
        ::close(fd);
        return false;
    }
    const std::size_t n = static_cast<std::size_t>(st.st_size);
    void *p = ::mmap(nullptr, n, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) {
        error = "trace: cannot mmap '" + path +
                "': " + std::strerror(errno);
        return false;
    }
    base = static_cast<const std::uint8_t *>(p);
    len = n;
    return true;
}

// ---- TraceReader ------------------------------------------------

bool
TraceReader::open(const std::string &path, std::string &error)
{
    if (!map.open(path, error))
        return false;
    return parse(map.data(), map.size(), error);
}

bool
TraceReader::fromImage(std::vector<std::uint8_t> img,
                       std::string &error)
{
    owned = std::move(img);
    return parse(owned.data(), owned.size(), error);
}

bool
TraceReader::parse(const std::uint8_t *data, std::size_t n,
                   std::string &error)
{
    // Smallest well-formed trace: header + empty metadata +
    // directory + checksum. Anything under the fixed fields is
    // trivially truncated.
    if (n < 24) {
        error = "trace: truncated (file smaller than header)";
        return false;
    }

    // Verify the trailing checksum before parsing anything — the
    // snapshot.hh discipline: corruption is one structured error,
    // never undefined behaviour.
    const std::size_t bodyLen = n - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= std::uint64_t{data[bodyLen + i]} << (8 * i);
    if (snapshotFnv1a(data, bodyLen) != stored) {
        error = "trace: checksum mismatch (truncated or corrupted)";
        return false;
    }

    SnapshotReader r(data, bodyLen);
    const std::uint64_t magic = r.getU64();
    if (r.ok() && magic != kTraceMagic) {
        error = "trace: bad magic (not an SVCTRC1 trace)";
        return false;
    }
    md.formatVersion = r.getU32();
    if (r.ok() && md.formatVersion != kTraceVersion) {
        error = "trace: unsupported format version " +
                std::to_string(md.formatVersion) + " (expected " +
                std::to_string(kTraceVersion) + ")";
        return false;
    }
    md.flags = r.getU32();
    md.name = r.getString();
    md.source = r.getString();
    md.scale = r.getU32();
    md.seed = r.getU64();
    md.loadValueHash = r.getU64();
    md.finalMemoryHash = r.getU64();
    md.checkBase = r.getU64();
    md.checkLen = r.getU64();
    md.finalChecksum = r.getU64();

    // Initial memory image: keep a pointer into the underlying
    // bytes rather than copying (it can be the workload's whole
    // data segment).
    const std::uint64_t imgLen = r.getU64();
    if (!r.ok() || imgLen > r.remaining()) {
        error = r.ok() ? "trace: image length exceeds file size"
                       : r.error();
        return false;
    }
    image = data + (bodyLen - r.remaining());
    imageLen = static_cast<std::size_t>(imgLen);

    // Thread directory, then the fixed-size record region. A second
    // bounds-checked reader positioned past the image keeps the
    // image bytes themselves unparsed (zero-copy).
    const std::uint8_t *rest = image + imageLen;
    SnapshotReader r2(rest,
                      bodyLen -
                          static_cast<std::size_t>(rest - data));
    const std::uint64_t nThreads = r2.getCount(8);
    threadStart.clear();
    threadStart.reserve(static_cast<std::size_t>(nThreads) + 1);
    threadStart.push_back(0);
    for (std::uint64_t t = 0; t < nThreads; ++t) {
        const std::uint64_t count = r2.getU64();
        if (!r2.ok())
            break;
        const std::uint64_t total = threadStart.back() + count;
        if (total < count ||
            total > r2.remaining() / kTraceRecordBytes +
                        (nThreads - t) /* directory not yet read */) {
            r2.fail("trace: record counts exceed file size");
            break;
        }
        threadStart.push_back(total);
    }
    if (!r2.ok()) {
        error = r2.error();
        return false;
    }
    const std::uint64_t totalRecs = threadStart.back();
    if (r2.remaining() != totalRecs * kTraceRecordBytes) {
        error = "trace: record region size mismatch (truncated or "
                "corrupted)";
        return false;
    }
    records = rest + (bodyLen -
                      static_cast<std::size_t>(rest - data) -
                      r2.remaining());
    error.clear();
    return true;
}

namespace
{

/** Zero-copy AccessStream over a TraceReader's mapped records. */
class TraceStream : public workloads::AccessStream
{
  public:
    explicit TraceStream(const TraceReader &r) : reader(r) {}

    std::uint64_t numThreads() const override
    {
        return reader.numThreads();
    }

    std::uint64_t
    threadOps(std::uint64_t thread) const override
    {
        return reader.threadOps(thread);
    }

    workloads::TraceOp
    op(std::uint64_t thread, std::uint64_t index) const override
    {
        return reader.op(thread, index);
    }

    bool hasLoadValues() const override
    {
        return reader.meta().hasLoadValues();
    }

  private:
    const TraceReader &reader;
};

/** A validated trace file as a replayable stimulus. */
class TraceStimulus : public workloads::StimulusSource
{
  public:
    explicit TraceStimulus(std::unique_ptr<TraceReader> r)
        : reader(std::move(r)),
          label("trace:" + reader->meta().name)
    {}

    const std::string &name() const override { return label; }
    unsigned scale() const override { return reader->meta().scale; }
    std::uint64_t seed() const override { return reader->meta().seed; }
    Addr checkBase() const override { return reader->meta().checkBase; }

    std::size_t checkLen() const override
    {
        return static_cast<std::size_t>(reader->meta().checkLen);
    }

    std::unique_ptr<workloads::AccessStream>
    openStream() const override
    {
        return reader->stream();
    }

    void
    loadInitialImage(MainMemory &mem) const override
    {
        std::string err;
        if (!reader->restoreInitialImage(mem, err))
            fatal("%s", err.c_str());
    }

    workloads::StimulusExpectations
    expectations() const override
    {
        workloads::StimulusExpectations e;
        e.hasLoadValueHash = true;
        e.loadValueHash = reader->meta().loadValueHash;
        e.hasFinalMemoryHash = true;
        e.finalMemoryHash = reader->meta().finalMemoryHash;
        return e;
    }

  private:
    std::unique_ptr<TraceReader> reader;
    std::string label;
};

} // namespace

std::unique_ptr<workloads::AccessStream>
TraceReader::stream() const
{
    return std::make_unique<TraceStream>(*this);
}

bool
TraceReader::restoreInitialImage(MainMemory &mem,
                                 std::string &error) const
{
    mem.clear();
    if (imageLen == 0)
        return true; // recorded from all-zero memory
    SnapshotReader r(image, imageLen);
    if (!mem.restoreState(r) || !r.ok()) {
        error = "trace: bad initial memory image: " +
                (r.error().empty() ? std::string("restore failed")
                                   : r.error());
        return false;
    }
    return true;
}

std::unique_ptr<workloads::StimulusSource>
makeTraceStimulus(const std::string &path, std::string &error)
{
    auto reader = std::make_unique<TraceReader>();
    if (!reader->open(path, error))
        return nullptr;
    return std::make_unique<TraceStimulus>(std::move(reader));
}

} // namespace svc::trace_io
