#include "trace_io/stimulus_cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace_io/trace_reader.hh"

namespace svc::trace_io
{

std::uint64_t
parseUnsignedArg(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s needs an unsigned integer, got "
                             "'%s'\n",
                     flag, text);
        std::exit(1);
    }
    return v;
}

namespace
{

const char *
flagValue(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
    }
    return argv[++i];
}

} // namespace

bool
parseStimulusFlag(int argc, char **argv, int &i,
                  StimulusOptions &opts)
{
    const char *arg = argv[i];
    if (std::strcmp(arg, "--workload") == 0) {
        opts.workload = flagValue(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--trace-in") == 0) {
        opts.traceIn = flagValue(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--trace-out") == 0) {
        opts.traceOut = flagValue(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--scale") == 0) {
        const std::uint64_t v = parseUnsignedArg(
            arg, flagValue(argc, argv, i, arg));
        if (v == 0 || v > 1u << 20) {
            std::fprintf(stderr,
                         "--scale must be between 1 and %u\n",
                         1u << 20);
            std::exit(1);
        }
        opts.scale = static_cast<unsigned>(v);
        opts.scaleSet = true;
    } else if (std::strcmp(arg, "--seed") == 0) {
        opts.seed = parseUnsignedArg(
            arg, flagValue(argc, argv, i, arg));
        opts.seedSet = true;
    } else {
        return false;
    }
    return true;
}

workloads::TraceGenConfig
genConfigFor(workloads::TracePattern pattern, unsigned scale,
             std::uint64_t seed)
{
    workloads::TraceGenConfig cfg;
    cfg.pattern = pattern;
    cfg.numTasks = 256 * scale;
    cfg.opsPerTask = 16;
    cfg.seed = seed;
    return cfg;
}

std::unique_ptr<workloads::StimulusSource>
makeStimulus(const StimulusOptions &opts,
             const std::string &defaultWorkload)
{
    if (!opts.traceIn.empty()) {
        std::string err;
        auto source = makeTraceStimulus(opts.traceIn, err);
        if (!source) {
            std::fprintf(stderr, "%s\n", err.c_str());
            std::exit(1);
        }
        return source;
    }

    const std::string name =
        opts.workload.empty() ? defaultWorkload : opts.workload;
    if (name.rfind("gen:", 0) == 0) {
        workloads::TracePattern pattern;
        const std::string pat = name.substr(4);
        if (!workloads::parseTracePattern(pat, pattern)) {
            std::fprintf(stderr,
                         "unknown gen pattern '%s' (expected "
                         "private, readshared, migratory, "
                         "falsesharing or mixed)\n",
                         pat.c_str());
            std::exit(1);
        }
        return workloads::makeGeneratedStimulus(
            genConfigFor(pattern, opts.scale, opts.seed));
    }

    bool known = false;
    for (const auto &w : workloads::workloadNames())
        known = known || w == name;
    if (!known) {
        std::string names;
        for (const auto &w : workloads::workloadNames()) {
            if (!names.empty())
                names += ", ";
            names += w;
        }
        std::fprintf(stderr,
                     "unknown workload '%s' (expected one of: %s, "
                     "or gen:<pattern>)\n",
                     name.c_str(), names.c_str());
        std::exit(1);
    }
    workloads::WorkloadParams params;
    params.scale = opts.scale;
    params.seed = opts.seed;
    return workloads::makeKernelStimulus(name, params);
}

} // namespace svc::trace_io
