/**
 * @file
 * The SVCTRC1 binary trace format.
 *
 * A trace file captures one workload's committed memory traffic as
 * per-thread access records in program order — the format's
 * first-class invariant, so a replay through the SVC or ARB remains
 * sequentially explainable — plus everything a replay needs to
 * reproduce and verify the run: the initial memory image, the
 * live run's load-value hash, and its final-memory hash.
 *
 * File layout (all integers little-endian):
 *
 *   u64  magic          "SVCTRC1\0"
 *   u32  formatVersion  currently 1
 *   u32  flags          bit 0: records carry observed load values
 *   ...  metadata       name, source, scale, seed, hashes (below)
 *   u64  imageLen       initial MainMemory image (saveState bytes)
 *   u8[] image
 *   u64  numThreads     thread directory: per-thread record counts
 *   u64  opCount[numThreads]
 *   rec[] records       fixed 24-byte records, thread-major
 *   u64  checksum       FNV-1a over every preceding byte
 *
 * One record:
 *
 *   u64  addr
 *   u64  value          store payload / observed load value
 *   u8   flags          bit 0: store
 *   u8   size           access size in bytes
 *   u8[6] reserved      zero
 *
 * Fixed-size records plus the up-front thread directory are what
 * make the mmap'd reader (trace_reader.hh) zero-copy: record i of
 * thread t lives at a computable offset, so a squash-and-replay
 * restart is random access into the mapping, never a re-parse.
 *
 * The framing discipline mirrors src/common/snapshot.hh (SVCSNAP1):
 * checksum verified before anything is parsed, bounds-checked
 * sticky-error reads, structured error messages, no exceptions.
 */

#ifndef SVC_TRACE_IO_TRACE_FORMAT_HH
#define SVC_TRACE_IO_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workloads/trace_gen.hh"

namespace svc::trace_io
{

/** Trace file magic: "SVCTRC1\0" as a little-endian u64. */
inline constexpr std::uint64_t kTraceMagic = 0x0031435254435653ull;

/** Current trace format version. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** Header flag: record values carry observed load values. */
inline constexpr std::uint32_t kTraceFlagLoadValues = 1u << 0;

/** Bytes per access record. */
inline constexpr std::size_t kTraceRecordBytes = 24;

/** Record flag: the access is a store. */
inline constexpr std::uint8_t kTraceRecStore = 1u << 0;

/** Trace metadata: identity plus the live run's expected results. */
struct TraceMeta
{
    std::uint32_t formatVersion = kTraceVersion;
    std::uint32_t flags = 0;
    std::string name;   ///< stimulus name ("compress", "gen:mixed")
    std::string source; ///< producing frontend ("kernel", "gen")
    std::uint32_t scale = 1;
    std::uint64_t seed = 0;
    /** Folded commit-order load-value hash of the recorded run. */
    std::uint64_t loadValueHash = 0;
    /** MainMemory::hashAll() after the recorded run finalized. */
    std::uint64_t finalMemoryHash = 0;
    /** Verification window of the recorded program (0 for none). */
    std::uint64_t checkBase = 0;
    std::uint64_t checkLen = 0;
    /** readWord(checkBase) of the recorded run (program traces). */
    std::uint64_t finalChecksum = 0;

    bool hasLoadValues() const { return flags & kTraceFlagLoadValues; }
};

/** Encode @p op into @p out (kTraceRecordBytes bytes). */
void encodeTraceRecord(std::uint8_t *out,
                       const workloads::TraceOp &op);

/** Decode one record from @p in (kTraceRecordBytes bytes). */
workloads::TraceOp decodeTraceRecord(const std::uint8_t *in);

/**
 * Build a complete SVCTRC1 file image: header, metadata, initial
 * memory image (MainMemory::saveState() bytes), thread directory,
 * records, trailing checksum.
 */
std::vector<std::uint8_t>
buildTraceImage(const TraceMeta &meta,
                const std::vector<std::uint8_t> &initialImage,
                const std::vector<std::vector<workloads::TraceOp>>
                    &threads);

/** Write @p image to @p path. @return false + message on error. */
bool writeTraceFile(const std::string &path,
                    const std::vector<std::uint8_t> &image,
                    std::string &error);

} // namespace svc::trace_io

#endif // SVC_TRACE_IO_TRACE_FORMAT_HH
