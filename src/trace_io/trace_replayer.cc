#include "trace_io/trace_replayer.hh"

#include <algorithm>
#include <vector>

#include "common/random.hh"

namespace svc::trace_io
{

namespace
{

/** Per-PU replay state; everything resets on squash/assign. */
struct PuState
{
    std::uint64_t task = kNoTask;
    std::uint64_t opIdx = 0;
    std::uint64_t opCount = 0;
    std::uint64_t threadHash = workloads::kStimulusHashInit;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t firstMismatchIndex = 0;
    std::uint64_t firstMismatchExpected = 0;
    std::uint64_t firstMismatchObserved = 0;
    /** Committed-load capture (ReplayConfig::captureLoadValues). */
    std::vector<std::uint64_t> values;

    void
    start(std::uint64_t t, std::uint64_t ops)
    {
        task = t;
        opIdx = 0;
        opCount = ops;
        threadHash = workloads::kStimulusHashInit;
        loads = stores = mismatches = 0;
        values.clear();
    }
};

} // namespace

ReplayResult
replayStream(const workloads::AccessStream &stream, SpecMem &sys,
             const ReplayConfig &cfg)
{
    ReplayResult r;
    const std::uint64_t n = stream.numThreads();
    r.threads = n;
    if (cfg.numPus == 0) {
        r.error = "replay: numPus must be nonzero";
        return r;
    }

    const bool checkValues =
        cfg.checkLoadValues && stream.hasLoadValues();
    if (cfg.captureLoadValues)
        r.committedLoads.resize(static_cast<std::size_t>(n));

    std::vector<PuId> pendingViolators;
    sys.setViolationHandler(
        [&pendingViolators](PuId pu) { pendingViolators.push_back(pu); });

    Rng rng(cfg.interleaveSeed);
    std::vector<PuState> pus(cfg.numPus);
    std::uint64_t next_task = 0;
    std::uint64_t next_commit = 0;
    std::uint64_t global_hash = workloads::kStimulusHashInit;

    // Forward-progress guard: generous slack per scheduling step,
    // reset whenever an access completes or a task commits.
    std::uint64_t idle = 0;
    constexpr std::uint64_t kIdleLimit = 5'000'000;

    std::vector<PuId> busy;
    busy.reserve(cfg.numPus);

    while (next_commit < n) {
        if (++idle > kIdleLimit) {
            r.error = "replay: no forward progress (engine stalled)";
            return r;
        }

        // Fill free PUs with the next threads, in program order.
        for (PuId p = 0; p < cfg.numPus && next_task < n; ++p) {
            if (pus[p].task == kNoTask) {
                pus[p].start(next_task, stream.threadOps(next_task));
                sys.assignTask(p, next_task);
                ++next_task;
            }
        }

        // Pick a random busy PU and step it one access.
        busy.clear();
        for (PuId p = 0; p < cfg.numPus; ++p) {
            if (pus[p].task != kNoTask)
                busy.push_back(p);
        }
        const PuId pu =
            busy[static_cast<std::size_t>(rng.below(busy.size()))];
        PuState &st = pus[pu];

        if (st.opIdx >= st.opCount) {
            // Thread complete; commit iff it is the oldest.
            if (st.task == next_commit) {
                sys.commitTask(pu);
                global_hash = workloads::foldThreadHash(global_hash,
                                                        st.threadHash);
                r.ops += st.opCount;
                r.loads += st.loads;
                r.stores += st.stores;
                if (st.mismatches && !r.loadMismatches) {
                    r.firstMismatchThread = st.task;
                    r.firstMismatchIndex = st.firstMismatchIndex;
                    r.firstMismatchExpected = st.firstMismatchExpected;
                    r.firstMismatchObserved = st.firstMismatchObserved;
                }
                r.loadMismatches += st.mismatches;
                if (cfg.captureLoadValues) {
                    r.committedLoads[static_cast<std::size_t>(
                        st.task)] = std::move(st.values);
                }
                st.task = kNoTask;
                ++next_commit;
                idle = 0;
            }
            continue;
        }

        const workloads::TraceOp op = stream.op(st.task, st.opIdx);
        bool finished = false;
        std::uint64_t value = 0;
        MemReq req;
        req.pu = pu;
        req.isStore = op.isStore;
        req.addr = op.addr;
        req.size = op.size;
        req.data = op.isStore ? op.value : 0;
        if (!sys.issue(req, [&finished, &value](std::uint64_t v) {
                finished = true;
                value = v;
            })) {
            // Port busy: drain one cycle and retry later.
            sys.tick();
            ++r.ticks;
            continue;
        }
        while (!finished) {
            sys.tick();
            if (++r.ticks, ++idle > kIdleLimit) {
                r.error = "replay: access never completed";
                return r;
            }
        }
        idle = 0;

        if (op.isStore) {
            ++st.stores;
        } else {
            ++st.loads;
            st.threadHash =
                workloads::hashLoadValue(st.threadHash, value);
            if (cfg.captureLoadValues)
                st.values.push_back(value);
            if (checkValues && value != op.value) {
                if (st.mismatches == 0) {
                    st.firstMismatchIndex = st.opIdx;
                    st.firstMismatchExpected = op.value;
                    st.firstMismatchObserved = value;
                }
                ++st.mismatches;
            }
        }
        ++st.opIdx;

        if (!pendingViolators.empty()) {
            // Squash the oldest violating task and every younger
            // one, then rewind assignment to re-execute them.
            std::uint64_t oldest = kNoTask;
            for (PuId v : pendingViolators) {
                if (pus[v].task != kNoTask)
                    oldest = std::min(oldest, pus[v].task);
            }
            pendingViolators.clear();
            if (oldest != kNoTask) {
                ++r.squashes;
                for (PuId p = 0; p < cfg.numPus; ++p) {
                    if (pus[p].task != kNoTask &&
                        pus[p].task >= oldest) {
                        sys.squashTask(p);
                        pus[p].task = kNoTask;
                        ++r.taskReplays;
                    }
                }
                next_task = std::min(next_task, oldest);
            }
        }
    }

    r.loadValueHash = global_hash;
    r.ok = true;
    return r;
}

} // namespace svc::trace_io
