#include "trace_io/trace_format.hh"

#include "common/snapshot.hh"

namespace svc::trace_io
{

void
encodeTraceRecord(std::uint8_t *out, const workloads::TraceOp &op)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(op.addr >> (8 * i));
    for (int i = 0; i < 8; ++i)
        out[8 + i] = static_cast<std::uint8_t>(op.value >> (8 * i));
    out[16] = op.isStore ? kTraceRecStore : 0;
    out[17] = static_cast<std::uint8_t>(op.size);
    for (int i = 18; i < 24; ++i)
        out[i] = 0;
}

workloads::TraceOp
decodeTraceRecord(const std::uint8_t *in)
{
    workloads::TraceOp op;
    op.addr = 0;
    op.value = 0;
    for (int i = 0; i < 8; ++i)
        op.addr |= std::uint64_t{in[i]} << (8 * i);
    for (int i = 0; i < 8; ++i)
        op.value |= std::uint64_t{in[8 + i]} << (8 * i);
    op.isStore = (in[16] & kTraceRecStore) != 0;
    op.size = in[17];
    return op;
}

std::vector<std::uint8_t>
buildTraceImage(const TraceMeta &meta,
                const std::vector<std::uint8_t> &initialImage,
                const std::vector<std::vector<workloads::TraceOp>>
                    &threads)
{
    SnapshotWriter w;
    w.putU64(kTraceMagic);
    w.putU32(meta.formatVersion);
    w.putU32(meta.flags);
    w.putString(meta.name);
    w.putString(meta.source);
    w.putU32(meta.scale);
    w.putU64(meta.seed);
    w.putU64(meta.loadValueHash);
    w.putU64(meta.finalMemoryHash);
    w.putU64(meta.checkBase);
    w.putU64(meta.checkLen);
    w.putU64(meta.finalChecksum);
    w.putVec(initialImage);
    w.putU64(threads.size());
    for (const auto &ops : threads)
        w.putU64(ops.size());
    std::uint8_t rec[kTraceRecordBytes];
    for (const auto &ops : threads) {
        for (const auto &op : ops) {
            encodeTraceRecord(rec, op);
            w.putBytes(rec, sizeof(rec));
        }
    }

    std::vector<std::uint8_t> image = w.bytes();
    const std::uint64_t sum =
        snapshotFnv1a(image.data(), image.size());
    for (int i = 0; i < 8; ++i)
        image.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
    return image;
}

bool
writeTraceFile(const std::string &path,
               const std::vector<std::uint8_t> &image,
               std::string &error)
{
    return writeSnapshotFile(path, image, error);
}

} // namespace svc::trace_io
