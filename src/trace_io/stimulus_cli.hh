/**
 * @file
 * Shared stimulus CLI parsing for multiscalar_run and sweep_runner.
 * Both tools accept the same flags — --workload, --trace-in,
 * --trace-out, --scale, --seed — with identical error messages
 * (message to stderr + exit 1), and resolve them into one
 * StimulusSource through the same rules:
 *
 *   --trace-in FILE       replay a recorded SVCTRC1 trace
 *   --workload NAME       a registered MiniISA kernel, or
 *   --workload gen:PAT    a synthetic trace_gen stream (PAT one of
 *                         private, readshared, migratory,
 *                         falsesharing, mixed)
 *
 * Generated streams size with --scale: ~256 threads of 16 accesses
 * per scale unit, so --scale 256 is a ≥1M-access stream.
 */

#ifndef SVC_TRACE_IO_STIMULUS_CLI_HH
#define SVC_TRACE_IO_STIMULUS_CLI_HH

#include <cstdint>
#include <memory>
#include <string>

#include "workloads/stimulus.hh"

namespace svc::trace_io
{

/** The shared stimulus flags, as parsed. */
struct StimulusOptions
{
    std::string workload; ///< kernel name or "gen:<pattern>"
    std::string traceIn;
    std::string traceOut;
    unsigned scale = 1;
    std::uint64_t seed = 12345;
    bool scaleSet = false;
    bool seedSet = false;
};

/**
 * Strict unsigned parse: the whole of @p text must be a number.
 * On failure prints "<flag> needs an unsigned integer" and exits 1.
 */
std::uint64_t parseUnsignedArg(const char *flag, const char *text);

/**
 * Try to consume argv[@p i] (advancing @p i past any value) as one
 * of the shared stimulus flags into @p opts. @return false when the
 * argument is not a stimulus flag (caller handles it); malformed
 * stimulus flags print a message and exit 1.
 */
bool parseStimulusFlag(int argc, char **argv, int &i,
                       StimulusOptions &opts);

/**
 * Generated-stream sizing for "gen:<pattern>" workloads: scale
 * multiplies the thread count so total accesses grow linearly
 * (~4096 accesses per scale unit).
 */
workloads::TraceGenConfig
genConfigFor(workloads::TracePattern pattern, unsigned scale,
             std::uint64_t seed);

/**
 * Resolve the parsed options into a stimulus: --trace-in wins,
 * otherwise --workload (falling back to @p defaultWorkload).
 * Unknown workloads, bad gen: patterns and unreadable traces print
 * a message and exit 1.
 */
std::unique_ptr<workloads::StimulusSource>
makeStimulus(const StimulusOptions &opts,
             const std::string &defaultWorkload);

} // namespace svc::trace_io

#endif // SVC_TRACE_IO_STIMULUS_CLI_HH
