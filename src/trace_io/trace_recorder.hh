/**
 * @file
 * Trace recording: a SpecMem decorator that taps the instrumented
 * memory path of any live run and dumps an SVCTRC1 trace.
 *
 * The recorder buffers each PU's in-flight task accesses and keeps
 * them only if the task commits: a squashed task's buffer is
 * discarded, so the trace contains exactly the committed accesses of
 * every task, in commit order — which for the multiscalar sequencer
 * equals sequential program order. Each committed task becomes one
 * trace thread, making per-thread program order the trace's
 * first-class invariant: a replay through any speculative backend
 * must reproduce the same committed values regardless of its own
 * interleaving, which is precisely what the SVC's sequential-
 * consistency guarantee promises and what record→replay tests
 * verify.
 *
 * Load records capture the value the access observed (delivered by
 * the completion callback); store records capture the payload.
 */

#ifndef SVC_TRACE_IO_TRACE_RECORDER_HH
#define SVC_TRACE_IO_TRACE_RECORDER_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/spec_mem.hh"
#include "trace_io/trace_format.hh"
#include "workloads/trace_gen.hh"

namespace svc
{
class MainMemory;
} // namespace svc

namespace svc::trace_io
{

/**
 * Wraps any SpecMem, forwarding every operation while recording the
 * accesses of tasks that commit. Checkpointing is deliberately not
 * forwarded — a recording run is not restorable.
 */
class RecordingSpecMem : public SpecMem
{
  public:
    RecordingSpecMem(std::unique_ptr<SpecMem> wrapped,
                     unsigned numPus);

    /** The wrapped system (for backend-specific queries). */
    SpecMem &inner() { return *wrappedMem; }
    const SpecMem &inner() const { return *wrappedMem; }

    /**
     * Capture the pre-run memory image (call after the program is
     * loaded, before the first cycle) so a replay can reproduce
     * every load value.
     */
    void captureInitialImage(const MainMemory &mem);

    std::uint64_t committedTasks() const { return threads.size(); }
    std::uint64_t committedOps() const;

    /** Folded commit-order load-value hash of the recorded run. */
    std::uint64_t loadValueHash() const;

    /**
     * Build and write the SVCTRC1 file. Fills in the record flags,
     * load-value hash and @p finalMem's image hash; the caller
     * provides identity metadata (name, source, scale, seed,
     * checkBase/checkLen/finalChecksum). @return false + message on
     * I/O error.
     */
    bool writeTrace(const std::string &path, TraceMeta meta,
                    const MainMemory &finalMem,
                    std::string &error) const;

    // ---- SpecMem: forwarded, with recording taps ----
    void setViolationHandler(ViolationFn fn) override;
    void assignTask(PuId pu, TaskSeq seq) override;
    bool issue(const MemReq &req, DoneFn done) override;
    void commitTask(PuId pu) override;
    void squashTask(PuId pu) override;
    void tick() override;
    Cycle
    nextWakeCycle() const override
    {
        return wrappedMem->nextWakeCycle();
    }
    void skipCycles(Cycle n) override { wrappedMem->skipCycles(n); }
    bool busyWithRequests() const override;
    StatSet stats() const override;
    const char *name() const override;
    void attachTracer(TraceSink *sink) override;
    void finalizeMemory() override;
    double missRatio() const override;

  private:
    /** One buffered access; the done callback fills load values. */
    struct PendingOp
    {
        workloads::TraceOp op;
    };

    std::unique_ptr<SpecMem> wrappedMem;
    /**
     * Per-PU buffer of the current task's accesses. Slots are
     * shared_ptrs so a completion callback that fires after its
     * task was squashed writes into an orphaned slot harmlessly.
     */
    std::vector<std::vector<std::shared_ptr<PendingOp>>> pending;
    /** Committed tasks' accesses, in commit (= program) order. */
    std::vector<std::vector<workloads::TraceOp>> threads;
    std::vector<std::uint8_t> initialImage;
};

} // namespace svc::trace_io

#endif // SVC_TRACE_IO_TRACE_RECORDER_HH
