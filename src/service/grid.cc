#include "service/grid.hh"

#include <cstdio>
#include <memory>

#include "common/invariants.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/snapshot.hh"
#include "isa/interpreter.hh"
#include "litmus/shapes.hh"
#include "mem/main_memory.hh"
#include "multiscalar/processor.hh"
#include "svc/corruptor.hh"
#include "svc/invariants.hh"
#include "svc/protocol.hh"
#include "svc/system.hh"
#include "tests/support/engine_adapters.hh"
#include "tests/support/task_script.hh"
#include "workloads/stimulus.hh"
#include "workloads/workloads.hh"

namespace svc::service
{
namespace
{

const char *const kWorkloads[] = {"compress", "gcc",   "vortex",
                                  "perl",     "ijpeg", "mgrid",
                                  "apsi"};

// ---------------------------------------------------------------
// Grid construction
// ---------------------------------------------------------------

void
addIpcGrid(std::vector<SweepItem> &items, const std::string &fig,
           unsigned arb_dcache_kb, unsigned svc_kb, unsigned scale)
{
    for (const char *w : kWorkloads) {
        for (unsigned lat = 4; lat >= 1; --lat) {
            SweepItem it;
            it.memKind = "arb";
            it.workload = w;
            it.scale = scale;
            it.cfg.arb = bench::paperArbConfig(arb_dcache_kb, lat);
            it.config = "arb" + std::to_string(arb_dcache_kb) +
                        "k_lat" + std::to_string(lat);
            it.id = fig + "/" + w + "/" + it.config;
            items.push_back(std::move(it));
        }
        SweepItem it;
        it.memKind = "svc";
        it.workload = w;
        it.scale = scale;
        it.cfg.svc = bench::paperSvcConfig(svc_kb);
        it.config = "svc" + std::to_string(svc_kb) + "k_final";
        it.id = fig + "/" + w + "/" + it.config;
        items.push_back(std::move(it));
    }
}

void
addFaultGrid(std::vector<SweepItem> &items, unsigned num_seeds)
{
    const FaultKind kinds[] = {
        FaultKind::CorruptVolPointer, FaultKind::CorruptMask,
        FaultKind::CorruptData, FaultKind::CorruptVolCache};
    for (FaultKind k : kinds) {
        for (std::uint64_t seed = 1; seed <= num_seeds; ++seed) {
            SweepItem it;
            it.kind = SweepItem::Fault;
            it.faultKind = k;
            it.seed = seed;
            it.id = std::string("faults/final/") + faultKindName(k) +
                    "/s" + std::to_string(seed);
            items.push_back(std::move(it));
        }
    }
}

void
addRecoveryGrid(std::vector<SweepItem> &items, unsigned scale,
                unsigned num_seeds)
{
    const FaultKind kinds[] = {
        FaultKind::CorruptVolPointer, FaultKind::CorruptMask,
        FaultKind::CorruptData, FaultKind::CorruptVolCache};
    for (FaultKind k : kinds) {
        for (std::uint64_t seed = 1; seed <= num_seeds; ++seed) {
            SweepItem it;
            it.kind = SweepItem::Recovery;
            it.workload = "compress";
            it.scale = scale;
            it.seed = seed;
            it.faultKind = k;
            it.policy = RecoveryPolicy::Degrade;
            it.corruptions = 1 + static_cast<unsigned>(seed % 3);
            it.id = std::string("recovery/compress/") +
                    faultKindName(k) + "/s" + std::to_string(seed);
            items.push_back(std::move(it));
        }
    }
}

/**
 * The "litmus" grid: every shape in the litmus library across the
 * six SVC design points (fault mix + staged recovery active) plus
 * the ARB baseline (fault-free: it has no fault hooks), each an
 * iterated campaign checked against the enumeration oracle.
 * Campaigns are internally deterministic, so results are
 * byte-identical at any --jobs.
 */
void
addLitmusGrid(std::vector<SweepItem> &items, std::uint64_t iters,
              bool faults)
{
    const SvcDesign designs[] = {SvcDesign::Base, SvcDesign::EC,
                                 SvcDesign::ECS, SvcDesign::HR,
                                 SvcDesign::RL, SvcDesign::Final};
    for (const std::string &shape : litmus::shapeNames()) {
        for (SvcDesign d : designs) {
            SweepItem it;
            it.kind = SweepItem::Litmus;
            it.workload = shape;
            it.litmusBackend = litmus::Backend::Svc;
            it.litmusDesign = d;
            it.litmusFaults = faults;
            it.litmusIters = iters;
            it.config = std::string("svc_") + svcDesignName(d);
            it.id = "litmus/" + shape + "/" + it.config;
            items.push_back(std::move(it));
        }
        SweepItem arb;
        arb.kind = SweepItem::Litmus;
        arb.workload = shape;
        arb.litmusBackend = litmus::Backend::Arb;
        arb.litmusFaults = false;
        arb.litmusIters = iters;
        arb.config = "arb";
        arb.id = "litmus/" + shape + "/arb";
        items.push_back(std::move(arb));
    }
}

/** The "trace" grid: one stimulus (a recorded trace or a synthetic
 *  gen:<pattern> stream) replayed through the paper's six SVC
 *  design points plus the ARB. */
void
addTraceGrid(std::vector<SweepItem> &items,
             const trace_io::StimulusOptions &stim, unsigned scale)
{
    if (stim.traceIn.empty() && stim.workload.empty())
        fatal("--grid trace needs --trace-in FILE or "
              "--workload gen:<pattern>");
    const std::string src =
        !stim.traceIn.empty() ? stim.traceIn : stim.workload;
    const SvcDesign designs[] = {SvcDesign::Base, SvcDesign::EC,
                                 SvcDesign::ECS, SvcDesign::HR,
                                 SvcDesign::RL, SvcDesign::Final};
    for (SvcDesign d : designs) {
        SweepItem it;
        it.memKind = "svc";
        it.workload = stim.workload;
        it.tracePath = stim.traceIn;
        it.scale = scale;
        it.seed = stim.seed;
        it.cfg.svc = bench::paperSvcConfig(8, d);
        it.config = std::string("svc8k_") + svcDesignName(d);
        it.id = "trace/" + src + "/" + it.config;
        items.push_back(std::move(it));
    }
    SweepItem arb;
    arb.memKind = "arb";
    arb.workload = stim.workload;
    arb.tracePath = stim.traceIn;
    arb.scale = scale;
    arb.seed = stim.seed;
    arb.cfg.arb = bench::paperArbConfig(32, 2);
    arb.config = "arb32k_lat2";
    arb.id = "trace/" + src + "/" + arb.config;
    items.push_back(std::move(arb));
}

// ---------------------------------------------------------------
// Item execution
// ---------------------------------------------------------------

/** Populate a Final-design protocol, corrupt it, and record whether
 *  the invariant engine flags the corruption (the same cell shape
 *  as the ctest fault matrix, reported instead of asserted). */
ItemResult
runFaultItem(const SweepItem &it)
{
    ItemResult r;
    MainMemory mem;
    SvcConfig cfg;
    cfg.numPus = 4;
    cfg.cacheBytes = 512;
    cfg.assoc = 4;
    cfg.lineBytes = 16;
    cfg = makeDesign(SvcDesign::Final, cfg);
    cfg.versioningBytes = 4;
    SvcProtocol proto(cfg, mem);

    test::ScriptConfig scfg;
    scfg.seed = it.seed;
    scfg.numTasks = 12;
    scfg.addrRange = 96;
    const test::TaskScript script = test::generateScript(scfg);
    test::runSpeculative(script, test::adaptProtocol(proto),
                         cfg.numPus, it.seed * 31);

    InvariantEngine eng;
    eng.addChecker(std::make_unique<SvcProtocolChecker>(proto));

    FaultConfig fcfg;
    fcfg.seed = it.seed * 7919 + 1;
    FaultInjector inj(fcfg);
    SvcCorruptor corruptor(proto, inj);
    const CorruptionResult res = corruptor.corrupt(it.faultKind);
    r.injected = res.injected;
    if (res.injected) {
        eng.runChecks(1);
        r.detected = !eng.clean();
        r.findings = static_cast<unsigned>(eng.findings().size());
    }
    return r;
}

/**
 * One recovery cell: a full multiscalar run on the paper's SVC
 * config with the staged RecoveryManager active and a deterministic
 * corruption schedule, reported against a fault-free reference run
 * of the identical workload (the IPC delta is the recovery cost).
 * Success means the recovered run halts, verifies against the
 * interpreter, and ends with the invariant engine clean.
 */
ItemResult
runRecoveryItem(const SweepItem &it)
{
    ItemResult r;
    workloads::WorkloadParams wp;
    wp.scale = it.scale;
    wp.seed = it.seed;
    workloads::Workload w = workloads::lookup(it.workload, wp);

    std::uint32_t ref_checksum = 0;
    {
        MainMemory mem;
        auto res =
            isa::Interpreter::run(w.program, mem, 2'000'000'000);
        if (!res.halted)
            fatal("recovery cell: reference interpreter run of "
                  "'%s' did not halt", w.name.c_str());
        ref_checksum = mem.readWord(w.checkBase);
    }

    const SvcConfig svc_cfg = bench::paperSvcConfig(8);

    // Fault-free reference: the denominator of the IPC cost.
    {
        MainMemory mem;
        SvcSystem sys(svc_cfg, mem);
        w.program.loadInto(mem);
        Processor cpu(bench::paperCpuConfig(), w.program, sys);
        const RunStats rs = cpu.run();
        sys.finalizeMemory();
        r.refIpc = rs.ipc;
    }

    // Recovered run.
    MainMemory mem;
    SvcSystem sys(svc_cfg, mem);
    FaultConfig fcfg;
    fcfg.seed = it.seed * 7919 + 1;
    FaultInjector inj(fcfg);
    InvariantEngine eng;
    sys.attachInvariants(eng);
    w.program.loadInto(mem);
    Processor cpu(bench::paperCpuConfig(), w.program, sys);
    RecoveryConfig rcfg;
    rcfg.policy = it.policy;
    RecoveryManager rm(rcfg, cpu, sys, mem, eng, nullptr, 0x5ecu);
    SvcCorruptor corruptor(sys.protocol(), inj);

    struct Event
    {
        Cycle at;
        bool fired = false;
    };
    std::vector<Event> schedule;
    const Cycle first = 300 + (it.seed % 5) * 137;
    for (unsigned i = 0; i < it.corruptions; ++i)
        schedule.push_back({first + i * 400});
    cpu.setTickHook([&](Cycle at) {
        for (Event &e : schedule) {
            if (e.fired || at < e.at)
                continue;
            if (corruptor.corrupt(it.faultKind).injected) {
                e.fired = true;
                ++r.injectedCount;
                // Detect before first use (see recovery_test.cc):
                // once a store dirties the corrupted block, the
                // damage is indistinguishable from legitimate
                // speculative data.
                eng.runChecks(at);
            }
            break;
        }
        rm.onTick(at);
    });

    const RunStats rs = cpu.run();
    sys.finalizeMemory();
    eng.runFinalChecks();

    r.ipc = rs.ipc;
    r.episodes = rm.nEpisodes;
    r.repairs = rm.nLineRepairs;
    r.replays = rm.nTaskReplays;
    r.rollbacks = rm.nRollbacks;
    r.degraded = rm.degraded();
    r.highestStage = rm.highestStageReached();
    r.recovered = rs.halted && eng.clean() &&
                  mem.readWord(w.checkBase) == ref_checksum;
    return r;
}

/** One litmus campaign: the iterated engine on the processor rail,
 *  fault mix + recovery on SVC cells, oracle-checked throughout. */
ItemResult
runLitmusItem(const SweepItem &it)
{
    ItemResult r;
    const litmus::LitmusTest *test = litmus::findShape(it.workload);
    if (!test)
        fatal("litmus item: unknown shape '%s'",
              it.workload.c_str());
    litmus::EngineConfig cfg;
    cfg.backend = it.litmusBackend;
    cfg.design = it.litmusDesign;
    cfg.iterations = it.litmusIters;
    cfg.seed = it.seed;
    cfg.faultMode = it.litmusFaults ? litmus::FaultMode::Mix
                                    : litmus::FaultMode::None;
    r.litmus = litmus::runShape(*test, cfg);
    return r;
}

/** The unified bench construction path: every bench item — kernel,
 *  synthetic stream or trace replay — resolves through the same
 *  helper the CLI flags use. Each caller opens its own stimulus so
 *  items stay self-contained. */
std::unique_ptr<workloads::StimulusSource>
openBenchStimulus(const SweepItem &it)
{
    trace_io::StimulusOptions so;
    so.workload = it.workload;
    so.traceIn = it.tracePath;
    so.scale = it.scale;
    so.seed = it.seed;
    return trace_io::makeStimulus(so, it.workload);
}

} // namespace

bool
isKnownGrid(const std::string &grid)
{
    return grid == "fig19" || grid == "fig20" || grid == "faults" ||
           grid == "recovery" || grid == "smoke" ||
           grid == "litmus" || grid == "full" || grid == "trace";
}

std::string
knownGridNames()
{
    return "fig19, fig20, faults, recovery, smoke, litmus, full, "
           "trace";
}

std::vector<SweepItem>
buildGrid(const std::string &grid, unsigned scale,
          const trace_io::StimulusOptions &stim)
{
    std::vector<SweepItem> items;
    if (grid == "fig19") {
        addIpcGrid(items, "fig19", 32, 8, scale);
    } else if (grid == "fig20") {
        addIpcGrid(items, "fig20", 64, 16, scale);
    } else if (grid == "faults") {
        addFaultGrid(items, 8);
    } else if (grid == "recovery") {
        addRecoveryGrid(items, scale, 4);
    } else if (grid == "smoke") {
        // A CI-sized cut: two workloads with contrasting sharing
        // behaviour, one ARB and one SVC point each, plus one fault
        // cell per corruption kind.
        for (const char *w : {"compress", "mgrid"}) {
            SweepItem arb;
            arb.memKind = "arb";
            arb.workload = w;
            arb.scale = scale;
            arb.cfg.arb = bench::paperArbConfig(32, 2);
            arb.config = "arb32k_lat2";
            arb.id = std::string("smoke/") + w + "/arb32k_lat2";
            items.push_back(std::move(arb));
            SweepItem svc;
            svc.memKind = "svc";
            svc.workload = w;
            svc.scale = scale;
            svc.cfg.svc = bench::paperSvcConfig(8);
            svc.config = "svc8k_final";
            svc.id = std::string("smoke/") + w + "/svc8k_final";
            items.push_back(std::move(svc));
        }
        addFaultGrid(items, 1);
        addRecoveryGrid(items, scale, 1);
        // Litmus cut: the two canonical shapes on the paper design
        // and the baseline, enough to catch an ordering regression.
        for (const char *shape : {"MP", "SB"}) {
            SweepItem svc;
            svc.kind = SweepItem::Litmus;
            svc.workload = shape;
            svc.litmusDesign = SvcDesign::Final;
            svc.litmusFaults = true;
            svc.litmusIters = 60;
            svc.config = "svc_Final";
            svc.id = std::string("litmus/") + shape + "/svc_Final";
            items.push_back(std::move(svc));
            SweepItem arb;
            arb.kind = SweepItem::Litmus;
            arb.workload = shape;
            arb.litmusBackend = litmus::Backend::Arb;
            arb.litmusIters = 60;
            arb.config = "arb";
            arb.id = std::string("litmus/") + shape + "/arb";
            items.push_back(std::move(arb));
        }
    } else if (grid == "litmus") {
        addLitmusGrid(items, 100 * scale, true);
    } else if (grid == "full") {
        addIpcGrid(items, "fig19", 32, 8, scale);
        addIpcGrid(items, "fig20", 64, 16, scale);
        addFaultGrid(items, 8);
        addRecoveryGrid(items, scale, 4);
        addLitmusGrid(items, 100 * scale, true);
    } else if (grid == "trace") {
        addTraceGrid(items, stim, scale);
    } else {
        fatal("unknown grid '%s' (%s)", grid.c_str(),
              knownGridNames().c_str());
    }

    // Outside the trace grid, --workload narrows the sweep to one
    // stimulus and --seed reseeds the bench rows (fault/recovery
    // cells keep their own per-cell seed schedule).
    if (grid != "trace" && !stim.workload.empty()) {
        std::vector<SweepItem> kept;
        for (SweepItem &it : items) {
            if (it.kind == SweepItem::Fault ||
                it.workload == stim.workload)
                kept.push_back(std::move(it));
        }
        if (kept.empty())
            fatal("grid '%s' has no items matching --workload '%s'",
                  grid.c_str(), stim.workload.c_str());
        items = std::move(kept);
    }
    if (stim.seedSet) {
        for (SweepItem &it : items) {
            if (it.kind == SweepItem::Bench)
                it.seed = stim.seed;
        }
    }
    return items;
}

ItemResult
runItem(const SweepItem &it)
{
    ItemResult r;
    if (it.kind == SweepItem::Fault) {
        r = runFaultItem(it);
    } else if (it.kind == SweepItem::Recovery) {
        r = runRecoveryItem(it);
    } else if (it.kind == SweepItem::Litmus) {
        r = runLitmusItem(it);
    } else {
        const auto stim = openBenchStimulus(it);
        bench::RunConfig rc;
        rc.memKind = it.memKind;
        rc.mem = it.cfg;
        rc.kernel = it.kernel;
        r.row = bench::runOn(*stim, rc);
    }
    return r;
}

ItemResult
runItemSliced(const SweepItem &it, const bench::SliceBudget &budget,
              bench::SliceOutcome &outcome)
{
    outcome = bench::SliceOutcome::Completed;
    if (it.kind != SweepItem::Bench)
        return runItem(it);
    const auto stim = openBenchStimulus(it);
    if (!stim->program())
        return runItem(it); // stream/trace items are not sliceable
    bench::RunConfig rc;
    rc.memKind = it.memKind;
    rc.mem = it.cfg;
    rc.kernel = it.kernel;
    ItemResult r;
    r.row = bench::runProgramSliced(*stim, rc, budget, outcome);
    return r;
}

std::string
renderRow(const SweepItem &it, const ItemResult &r)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.member("id", it.id);
    if (it.kind == SweepItem::Bench) {
        w.member("kind", "bench");
        w.member("workload", r.row.workload);
        w.member("run_kind", r.row.kind);
        w.member("mem", r.row.memSystem);
        w.member("config", it.config);
        w.key("scale");
        w.value(it.scale);
        w.key("seed");
        w.value(it.seed);
        w.member("ipc", r.row.ipc);
        w.member("miss_ratio", r.row.missRatio);
        w.member("bus_utilization", r.row.busUtilization);
        w.key("instructions");
        w.value(r.row.instructions);
        w.key("cycles");
        w.value(static_cast<std::uint64_t>(r.row.cycles));
        w.key("violation_squashes");
        w.value(r.row.violationSquashes);
        w.key("task_mispredicts");
        w.value(r.row.taskMispredicts);
        w.key("ops");
        w.value(r.row.ops);
        w.key("load_mismatches");
        w.value(r.row.loadMismatches);
        // Fixed-width hex keeps the determinism byte-compare
        // independent of JSON number formatting.
        char hash[20];
        std::snprintf(hash, sizeof(hash), "0x%016llx",
                      static_cast<unsigned long long>(
                          r.row.loadValueHash));
        w.member("load_value_hash", hash);
        w.member("verified", r.row.verified);
    } else if (it.kind == SweepItem::Fault) {
        w.member("kind", "fault");
        w.member("design", "Final");
        w.member("fault_kind", faultKindName(it.faultKind));
        w.key("seed");
        w.value(it.seed);
        w.member("injected", r.injected);
        w.member("detected", r.detected);
        w.key("findings");
        w.value(static_cast<std::uint64_t>(r.findings));
    } else if (it.kind == SweepItem::Litmus) {
        w.member("kind", "litmus");
        w.member("shape", it.workload);
        w.member("cell", it.config);
        w.member("iterations", r.litmus.iterations);
        w.member("allowed_outcomes",
                 static_cast<std::uint64_t>(r.litmus.allowedSize));
        w.member("allowed_covered",
                 static_cast<std::uint64_t>(
                     r.litmus.allowedCovered));
        w.member("violations", r.litmus.violationCount);
        w.member("faults_injected", r.litmus.injected);
        w.member("recovery_episodes", r.litmus.episodes);
        w.member("ok", r.litmus.ok);
        w.key("histogram");
        w.beginObject();
        for (const auto &[outcome, count] : r.litmus.histogram)
            w.member(outcome, count);
        w.endObject();
    } else {
        w.member("kind", "recovery");
        w.member("workload", it.workload);
        w.member("policy", recoveryPolicyName(it.policy));
        w.member("fault_kind", faultKindName(it.faultKind));
        w.key("scale");
        w.value(it.scale);
        w.key("seed");
        w.value(it.seed);
        w.key("injected");
        w.value(r.injectedCount);
        w.key("episodes");
        w.value(r.episodes);
        w.key("line_repairs");
        w.value(r.repairs);
        w.key("task_replays");
        w.value(r.replays);
        w.key("rollbacks");
        w.value(r.rollbacks);
        w.member("degraded", r.degraded);
        w.key("highest_stage");
        w.value(static_cast<std::uint64_t>(r.highestStage));
        w.member("ipc", r.ipc);
        w.member("ref_ipc", r.refIpc);
        // Relative IPC cost of recovery vs the fault-free run of
        // the same workload (0 = free, 1 = total loss).
        const double cost =
            r.refIpc > 0.0 ? 1.0 - r.ipc / r.refIpc : 0.0;
        w.member("ipc_cost", cost);
        w.member("recovered", r.recovered);
    }
    w.endObject();
    return w.str();
}

std::string
rowFailure(const SweepItem &it, const ItemResult &r)
{
    if (it.kind == SweepItem::Bench && !r.row.verified)
        return "checksum verification failed";
    if (it.kind == SweepItem::Fault && r.injected && !r.detected)
        return "corruption went undetected";
    if (it.kind == SweepItem::Recovery && !r.recovered) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "run did not recover (episodes=%llu stage=%u)",
                      static_cast<unsigned long long>(r.episodes),
                      r.highestStage);
        return buf;
    }
    if (it.kind == SweepItem::Litmus && !r.litmus.ok) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "%llu forbidden outcomes",
                      static_cast<unsigned long long>(
                          r.litmus.violationCount));
        return std::string(buf) + "\n" +
               litmus::reportString(r.litmus);
    }
    return "";
}

std::string
renderResultsDoc(const std::string &grid, unsigned scale,
                 const std::vector<std::string> &rows)
{
    JsonWriter w;
    w.beginObject();
    w.member("schema", "svc-sweep-v1");
    w.member("grid", grid);
    w.key("scale");
    w.value(scale);
    w.key("items");
    w.value(static_cast<std::uint64_t>(rows.size()));
    w.key("results");
    w.beginArray();
    for (const std::string &row : rows)
        w.rawValue(row);
    w.endArray();
    w.endObject();
    return w.str();
}

std::uint64_t
gridFingerprint(const std::vector<SweepItem> &items)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const SweepItem &it : items) {
        h = snapshotFnv1a(it.id.data(), it.id.size(), h);
        const char sep = '\n';
        h = snapshotFnv1a(&sep, 1, h);
    }
    return h;
}

} // namespace svc::service
