#include "service/process_worker.hh"

#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <new>
#include <thread>

#include "common/posix_io.hh"
#include "common/snapshot.hh"
#include "service/ipc.hh"

namespace svc::service
{
namespace
{

using Clock = std::chrono::steady_clock;

/**
 * Child-side state of the result pipe. The heartbeat thread and the
 * main thread both write frames, so every write goes through one
 * mutex — frames interleave at frame granularity, never mid-frame
 * (the decoder's torn-tail property depends on that).
 */
struct ChildPipe
{
    int fd;
    std::mutex mu;
    std::atomic<bool> stop{false};

    bool
    send(IpcTag tag, const std::vector<std::uint8_t> &payload)
    {
        std::lock_guard<std::mutex> lock(mu);
        return writeIpcFrame(fd, tag, payload);
    }
};

void
heartbeatLoop(ChildPipe *pipe, unsigned periodMillis)
{
    std::uint64_t seq = 0;
    while (!pipe->stop.load(std::memory_order_relaxed)) {
        SnapshotWriter w;
        w.putU64(seq++);
        if (!pipe->send(IpcTag::Heartbeat, w.bytes()))
            return; // parent gone; nothing left to report to
        std::this_thread::sleep_for(
            std::chrono::milliseconds(periodMillis));
    }
}

/** Current address-space usage from /proc/self/statm, in bytes
 *  (0 if unreadable). Lets the OOM probe clamp RLIMIT_AS *relative*
 *  to what is already mapped — under ASan the baseline is huge. */
std::uint64_t
currentVmBytes()
{
    std::FILE *f = std::fopen("/proc/self/statm", "re");
    if (!f)
        return 0;
    unsigned long long pages = 0;
    const int n = std::fscanf(f, "%llu", &pages);
    std::fclose(f);
    if (n != 1)
        return 0;
    return static_cast<std::uint64_t>(pages) *
           static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

/**
 * Genuinely exhaust the address space: clamp RLIMIT_AS a little
 * above current usage, then map until the kernel refuses. Raw mmap
 * (not operator new) so a sanitizer allocator cannot turn the
 * refusal into an abort; exit code kChildExitOom makes the
 * classification deterministic. Never returns.
 */
[[noreturn]] void
induceOom()
{
    const std::uint64_t current = currentVmBytes();
    const std::uint64_t headroom = 64ull << 20;
    struct rlimit rl;
    rl.rlim_cur = current ? current + headroom : (256ull << 20);
    rl.rlim_max = rl.rlim_cur;
    ::setrlimit(RLIMIT_AS, &rl);
    for (;;) {
        void *p = ::mmap(nullptr, 16ull << 20,
                         PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (p == MAP_FAILED)
            ::_exit(kChildExitOom);
        // Touch one byte per page region so the mapping is real.
        *static_cast<volatile char *>(p) = 1;
    }
}

/** Take a genuine segfault. SIG_DFL first: sanitizers install their
 *  own SIGSEGV handler, which would turn the kernel's verdict into
 *  a report + exit(1). A store through a small non-null address
 *  dodges compiler null-store elision and UBSan null checks alike.
 *  Never returns (and if the store somehow survived, _exit(99)
 *  classifies as NonzeroExit rather than lying with a clean 0). */
[[noreturn]] void
induceSegv()
{
    std::signal(SIGSEGV, SIG_DFL);
    // Launder the address through an asm barrier so the compiler
    // cannot prove (and warn about, or elide) the wild store.
    std::uintptr_t addr = 8;
    asm volatile("" : "+r"(addr));
    *reinterpret_cast<volatile int *>(addr) = 0xdead;
    ::_exit(99);
}

/**
 * Child entry: everything after fork() on the child side. Always
 * ends in _exit — the child must never unwind into the parent's
 * stack frames (atexit handlers, gtest teardown, stdio flush of
 * inherited buffers).
 */
[[noreturn]] void
childMain(int wfd, const SweepItem &item, std::uint64_t jobId,
          unsigned attempt, InducedFault induced,
          const ProcessLimits &limits, Cycle sliceCycles,
          Cycle deadlineCycles)
{
    // A parent that gave up closes its read end; a write then gets
    // EPIPE (handled) rather than SIGPIPE (fatal).
    ignoreSigpipe();

    // No core files from intentionally-crashed chaos children.
    struct rlimit rl;
    rl.rlim_cur = 0;
    rl.rlim_max = 0;
    ::setrlimit(RLIMIT_CORE, &rl);

    if (limits.cpuSeconds > 0) {
        rl.rlim_cur = limits.cpuSeconds;
        rl.rlim_max = limits.cpuSeconds + 2; // hard kill backstop
        ::setrlimit(RLIMIT_CPU, &rl);
    }
    if (limits.addressSpaceBytes > 0) {
        rl.rlim_cur = limits.addressSpaceBytes;
        rl.rlim_max = limits.addressSpaceBytes;
        ::setrlimit(RLIMIT_AS, &rl);
    }
    // Allocation failure under RLIMIT_AS exits with the OOM code
    // instead of an uncaught bad_alloc (→ SIGABRT) — deterministic
    // classification either way the exhaustion surfaces.
    std::set_new_handler([] { ::_exit(kChildExitOom); });

    static ChildPipe pipe; // static: never destroyed before _exit
    pipe.fd = wfd;

    {
        SnapshotWriter w;
        w.putU32(kIpcVersion);
        w.putU64(static_cast<std::uint64_t>(::getpid()));
        w.putU64(jobId);
        w.putU32(attempt);
        pipe.send(IpcTag::Hello, w.bytes());
    }

    // The heartbeat runs on its own thread so a busy (or wedged)
    // main thread keeps beating — only a whole-process freeze
    // (SIGSTOP) or death silences it. Started before any induced
    // fault: the SIGSTOP kind must freeze a *beating* child.
    std::thread beat(heartbeatLoop, &pipe, limits.heartbeatMillis);

    switch (induced) {
    case InducedFault::None:
        break;
    case InducedFault::SigKill:
        ::kill(::getpid(), SIGKILL);
        ::_exit(98); // unreachable
    case InducedFault::SigSegv:
        induceSegv();
    case InducedFault::SigStop:
        // Freezes every thread, heartbeat included; the supervisor's
        // deadline expires and it SIGKILLs the wedge.
        ::kill(::getpid(), SIGSTOP);
        // Only reachable if something SIGCONTs us (it should not).
        for (;;)
            ::pause();
    case InducedFault::Oom:
        // Quiesce the heartbeat thread first: once RLIMIT_AS is
        // clamped, its frame allocations could fail at an arbitrary
        // moment and race the deterministic OOM exit.
        pipe.stop.store(true, std::memory_order_relaxed);
        beat.join();
        induceOom();
    case InducedFault::SpinCpu: {
        // Wedged but *live*: heartbeats keep flowing, so only
        // RLIMIT_CPU (SIGXCPU) ends this. The asm barrier keeps
        // the side-effect-free loop from being UB-elided.
        std::uint64_t n = 0;
        for (;;) {
            ++n;
            asm volatile("" : "+r"(n));
        }
    }
    }

    // ---- run the item (the non-chaos path) ----
    ItemResult result;
    bench::SliceOutcome outcome = bench::SliceOutcome::Completed;
    if (sliceCycles > 0 || deadlineCycles > 0) {
        // The child owns its process, so cooperative preemption is
        // moot — loop the slices to completion locally. Checkpoint
        // restore is bit-identical, so the rendered row matches an
        // unsliced run byte for byte.
        std::vector<std::uint8_t> image;
        bench::SliceBudget budget;
        budget.sliceCycles = sliceCycles;
        budget.deadlineCycles = deadlineCycles;
        budget.resumeImage = &image;
        do {
            result = runItemSliced(item, budget, outcome);
        } while (outcome == bench::SliceOutcome::Preempted);
    } else {
        result = runItem(item);
    }

    pipe.stop.store(true, std::memory_order_relaxed);
    beat.join();

    if (outcome == bench::SliceOutcome::Timeout) {
        SnapshotWriter w;
        w.putString("forward-progress deadline expired "
                    "(no instruction commit within budget)");
        pipe.send(IpcTag::Strike, w.bytes());
        ::_exit(0);
    }

    const std::string row = renderRow(item, result);
    const std::string failure = rowFailure(item, result);
    SnapshotWriter w;
    w.putBool(!failure.empty());
    w.putString(row);
    w.putString(failure);
    pipe.send(IpcTag::Row, w.bytes());
    ::_exit(0);
}

std::string
describeFrame(const IpcFrame &frame)
{
    std::string s = ipcTagName(frame.tag);
    s += "(";
    s += std::to_string(frame.payload.size());
    s += "B)";
    if (static_cast<IpcTag>(frame.tag) == IpcTag::Strike) {
        SnapshotReader r(frame.payload);
        const std::string reason = r.getString();
        if (r.ok()) {
            s += " ";
            s += reason;
        }
    }
    return s;
}

std::string
signalDescription(int sig)
{
    std::string s = "signal " + std::to_string(sig);
    const char *name = ::strsignal(sig);
    if (name) {
        s += " (";
        s += name;
        s += ")";
    }
    return s;
}

} // namespace

const char *
exitClassName(ExitClass cls)
{
    switch (cls) {
    case ExitClass::CleanExit: return "clean-exit";
    case ExitClass::CleanStrike: return "clean-strike";
    case ExitClass::NonzeroExit: return "nonzero-exit";
    case ExitClass::FatalSignal: return "fatal-signal";
    case ExitClass::RlimitCpu: return "rlimit-cpu";
    case ExitClass::RlimitOom: return "rlimit-oom";
    case ExitClass::HeartbeatTimeout: return "heartbeat-timeout";
    case ExitClass::ProtocolError: return "protocol-error";
    case ExitClass::ForkFailed: return "fork-failed";
    }
    return "?";
}

std::vector<pid_t>
WorkerSupervisor::livePids() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<pid_t> pids;
    pids.reserve(children.size());
    for (const auto &kv : children)
        pids.push_back(kv.first);
    return pids;
}

ProcessOutcome
WorkerSupervisor::runAttempt(const SweepItem &item,
                             std::uint64_t jobId, unsigned attempt,
                             InducedFault induced,
                             const ProcessLimits &limits,
                             Cycle sliceCycles, Cycle deadlineCycles)
{
    ProcessOutcome out;
    int fds[2];
    pid_t pid = -1;

    {
        // Serialize fork against sibling forks: a child must be able
        // to close every *other* live pipe fd it inherited, and the
        // set must not change between pipe() and fork().
        std::lock_guard<std::mutex> lock(mu);
        if (::pipe(fds) != 0) {
            out.cls = ExitClass::ForkFailed;
            out.reason = std::string("pipe(2) failed: ") +
                         std::strerror(errno);
            return out;
        }
        std::vector<int> siblingFds;
        siblingFds.reserve(children.size());
        for (const auto &kv : children)
            siblingFds.push_back(kv.second);

        pid = ::fork();
        if (pid < 0) {
            out.cls = ExitClass::ForkFailed;
            out.reason = std::string("fork(2) failed: ") +
                         std::strerror(errno);
            ::close(fds[0]);
            ::close(fds[1]);
            return out;
        }
        if (pid == 0) {
            // Child. Drop the parent side of our pipe and every
            // sibling read end we inherited (their write ends live
            // only in the parent and siblings, but close whatever
            // we can see registered).
            ::close(fds[0]);
            for (int fd : siblingFds)
                ::close(fd);
            childMain(fds[1], item, jobId, attempt, induced, limits,
                      sliceCycles, deadlineCycles);
            // not reached
        }
        ::close(fds[1]);
        children.emplace(pid, fds[0]);
    }

    const int rfd = fds[0];
    out.childPid = pid;

    // ---- supervise: poll frames, tick waitpid, enforce deadline --
    FrameDecoder decoder;
    bool reaped = false;
    bool timedOut = false;
    int status = 0;
    auto deadline = Clock::now() + std::chrono::milliseconds(
                                       limits.heartbeatTimeoutMillis);

    auto drainFrames = [&] {
        IpcFrame frame;
        while (decoder.next(frame)) {
            deadline = Clock::now() +
                       std::chrono::milliseconds(
                           limits.heartbeatTimeoutMillis);
            switch (static_cast<IpcTag>(frame.tag)) {
            case IpcTag::Heartbeat:
                ++out.heartbeats;
                continue; // too chatty for the frame trail
            case IpcTag::Hello:
                break;
            case IpcTag::Row: {
                SnapshotReader r(frame.payload);
                const bool failed = r.getBool();
                const std::string row = r.getString();
                const std::string failure = r.getString();
                if (r.ok()) {
                    out.hasRow = true;
                    out.rowFailed = failed;
                    out.rowJson = row;
                    out.rowFailure = failure;
                }
                break;
            }
            case IpcTag::Strike: {
                SnapshotReader r(frame.payload);
                const std::string reason = r.getString();
                if (r.ok() && out.reason.empty())
                    out.reason = reason;
                break;
            }
            }
            out.finalFrames.push_back(describeFrame(frame));
            if (out.finalFrames.size() > 8)
                out.finalFrames.erase(out.finalFrames.begin());
        }
    };

    for (;;) {
        // Sibling children may hold dup'd write ends of this pipe,
        // so EOF is advisory at best: waitpid below is the loop's
        // real exit condition.
        struct pollfd pfd;
        pfd.fd = rfd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const auto now = Clock::now();
        long waitMs = std::chrono::duration_cast<
                          std::chrono::milliseconds>(deadline - now)
                          .count();
        if (waitMs < 0)
            waitMs = 0;
        if (waitMs > 50)
            waitMs = 50; // keep the waitpid tick responsive
        const int pr =
            ::poll(&pfd, 1, reaped ? 0 : static_cast<int>(waitMs));
        if (pr < 0 && errno != EINTR)
            break;
        if (pr > 0 && (pfd.revents & (POLLIN | POLLHUP))) {
            std::uint8_t buf[4096];
            std::size_t got = 0;
            if (readFdSome(rfd, buf, sizeof(buf), got) && got > 0) {
                decoder.feed(buf, got);
                drainFrames();
            } else if (got == 0 && reaped) {
                break; // child reaped and pipe drained: done
            } else if (got == 0 && !(pfd.revents & POLLIN)) {
                // HUP with no data: writers gone. Keep ticking
                // waitpid; do not trust this as death.
            }
        } else if (pr == 0 && reaped) {
            break; // no residual bytes after reap
        }

        if (!reaped) {
            const pid_t w = ::waitpid(pid, &status, WNOHANG);
            if (w == pid) {
                reaped = true;
                continue; // one more pass to drain buffered frames
            }
            if (Clock::now() >= deadline) {
                // Silent child: wedged (SIGSTOP), or its pipe died.
                // SIGKILL works even on a stopped process.
                timedOut = true;
                ::kill(pid, SIGKILL);
                while (::waitpid(pid, &status, 0) < 0 &&
                       errno == EINTR) {
                }
                reaped = true;
            }
        }
    }
    if (!reaped) {
        ::kill(pid, SIGKILL);
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        reaped = true;
    }
    drainFrames();

    {
        std::lock_guard<std::mutex> lock(mu);
        children.erase(pid);
    }
    ::close(rfd);

    out.rawStatus = status;
    out.streamError = decoder.error();

    // ---- classify ----
    if (timedOut) {
        out.cls = ExitClass::HeartbeatTimeout;
        out.reason = "no heartbeat within " +
                     std::to_string(limits.heartbeatTimeoutMillis) +
                     "ms (child pid " + std::to_string(pid) +
                     " wedged; SIGKILLed by supervisor)";
    } else if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 0) {
            if (out.hasRow) {
                out.cls = ExitClass::CleanExit;
            } else if (!out.reason.empty()) {
                out.cls = ExitClass::CleanStrike;
            } else {
                out.cls = ExitClass::ProtocolError;
                out.reason =
                    "child exited 0 without a result frame" +
                    (decoder.torn() ? " (" + decoder.error() + ")"
                                    : std::string());
            }
        } else if (code == kChildExitOom) {
            out.cls = ExitClass::RlimitOom;
            out.reason = "address-space limit exhausted (child "
                         "exited with the OOM code after RLIMIT_AS "
                         "refused further mappings)";
        } else {
            out.cls = ExitClass::NonzeroExit;
            out.reason =
                "child exited with code " + std::to_string(code);
        }
    } else if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        if (sig == SIGXCPU) {
            out.cls = ExitClass::RlimitCpu;
            out.reason = "cpu rlimit exceeded (killed by SIGXCPU "
                         "after " +
                         std::to_string(limits.cpuSeconds) +
                         "s of cpu time)";
        } else {
            out.cls = ExitClass::FatalSignal;
            out.reason = "child killed by " + signalDescription(sig);
        }
    } else {
        out.cls = ExitClass::ProtocolError;
        out.reason = "unclassifiable waitpid status " +
                     std::to_string(status);
    }
    return out;
}

} // namespace svc::service
