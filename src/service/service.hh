/**
 * @file
 * The fault-tolerant sweep job service: a supervised worker pool
 * executing a sweep campaign (one job per grid item) behind a
 * crash-safe write-ahead job journal.
 *
 * Lifecycle: construct with a ServiceConfig, start() (which either
 * begins a fresh campaign — journaling CAMP + one SUBM per admitted
 * item — or replays an existing journal and re-queues every
 * non-terminal job), then drain() to run the worker pool until all
 * jobs are terminal. drain() returns false when the service
 * "crashed" (an injected whole-service restart or a failed journal
 * append); the front-end then constructs a fresh service on the
 * same journal and calls start()/drain() again — completed jobs are
 * restored from the journal, never re-executed.
 *
 * Supervision: each attempt is journaled (STRT) before it runs;
 * worker death (chaos kill), hangs (reaped by the per-job
 * forward-progress deadline) and row-level failures count as
 * strikes, retried with exponential backoff + deterministic jitter
 * up to maxAttempts, after which the job is quarantined with a
 * diagnostic bundle (JSON repro: the sweep_runner and
 * fault_minimizer command lines that replay the cell in isolation).
 *
 * Isolation backends: attempts run on pool threads (Thread, the
 * default) or each in a forked child supervised over pipe IPC
 * (Process — service/process_worker.hh): per-attempt rlimits bound
 * cpu time and address space, a heartbeat deadline reaps wedged
 * children, and waitpid(2) classification folds real crashes
 * (SIGSEGV, SIGKILL, address-space OOM, SIGSTOP wedges) into the
 * same strike ladder. Real-signal chaos kinds are refused under
 * thread isolation with a structured error — a real SIGSEGV on a
 * pool thread would kill the daemon itself.
 *
 * Long jobs: when sliceCycles > 0, program-backed bench jobs run
 * preemptible slices (bench::runProgramSliced); a preempted job
 * keeps its checkpoint image in memory and re-queues at the back of
 * its lane, so one long job cannot starve the pool. The image is
 * deliberately not journaled: a restart simply re-runs the job from
 * scratch, which is always correct (items are pure).
 *
 * Admission and degradation: the queue is bounded
 * (queueCapacity; overflow → Rejected) and the service enters
 * overload mode when pending work exceeds overloadThreshold —
 * low-priority submissions are shed (journaled SHED, so the
 * decision survives restarts) until pressure drops. Campaign
 * expansion maps baseline/low-value cells to the Low lane, so
 * degradation shrinks grid fan-out before it touches primary cells.
 *
 * Determinism: jobs are pure functions of their grid item, rows are
 * rendered by grid::renderRow into compact JSON, journaled verbatim
 * in CMPL records, and aggregated in item order — so the results
 * document is byte-identical no matter the worker count, retry
 * schedule, preemption points, or crash/restart history.
 */

#ifndef SVC_SERVICE_SERVICE_HH
#define SVC_SERVICE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos.hh"
#include "service/grid.hh"
#include "service/job_journal.hh"
#include "service/process_worker.hh"

namespace svc::service
{

/**
 * Worker isolation backend. Thread workers are cheap and share the
 * daemon's fate: a simulated chaos kind is fine, a real SIGSEGV is
 * not. Process workers fork one child per attempt, supervised over
 * pipe IPC (service/process_worker.hh) — a child that segfaults,
 * OOMs, or wedges under SIGSTOP is classified and folded into the
 * same strike → retry → quarantine ladder without the daemon
 * noticing more than a strike.
 */
enum class Isolation
{
    Thread,
    Process,
};

const char *isolationName(Isolation iso);

/** @return the isolation named @p name ("thread", "process"), or
 *  Thread with @p ok = false if unknown. */
Isolation isolationFromName(const std::string &name, bool &ok);

struct ServiceConfig
{
    std::string journalPath = "sweep.journal";
    std::string grid = "smoke";
    unsigned scale = 1;
    trace_io::StimulusOptions stim; ///< --workload/--seed narrowing

    unsigned workers = 2;
    unsigned maxAttempts = 3; ///< strikes before quarantine
    unsigned backoffBaseMs = 1;
    unsigned backoffMaxMs = 32;
    /** Preemption quantum for program jobs; 0 = never preempt. */
    Cycle sliceCycles = 0;
    /** Per-attempt forward-progress deadline (0 = none): abandon an
     *  attempt if no instruction commits for this many cycles. */
    Cycle deadlineCycles = 0;

    std::size_t queueCapacity = 1u << 16;
    /** Pending jobs above this → overload mode (shed Low lane).
     *  0 = never degrade. */
    std::size_t overloadThreshold = 0;

    /** Quarantine bundle path prefix ("" disables bundles). */
    std::string quarantinePrefix = "sweep";

    /** Worker backend; real-signal chaos kinds require Process. */
    Isolation isolation = Isolation::Thread;
    /** Per-attempt resource policy (process isolation only). */
    ProcessLimits processLimits;

    ChaosConfig chaos;
};

/** Admission verdict for one submission. */
enum class Admission { Accepted, Rejected, Shed };

struct ServiceCounters
{
    std::uint64_t submitted = 0; ///< accepted this incarnation
    std::uint64_t restored = 0;  ///< terminal jobs replayed from
                                 ///< the journal (not re-run)
    std::uint64_t requeued = 0;  ///< non-terminal jobs re-queued on
                                 ///< resume
    std::uint64_t started = 0;   ///< attempts begun (STRT records)
    std::uint64_t itemRuns = 0;  ///< grid items actually executed
    std::uint64_t completed = 0;
    std::uint64_t retries = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;

    // Process-isolation supervision (zero under thread workers).
    std::uint64_t processAttempts = 0; ///< attempts run in a child
    std::uint64_t childSignals = 0;    ///< fatal-signal deaths
    std::uint64_t childTimeouts = 0;   ///< heartbeat-deadline kills
    std::uint64_t childOoms = 0;       ///< RLIMIT_AS exhaustions
    std::uint64_t childCpuKills = 0;   ///< RLIMIT_CPU (SIGXCPU)
};

class SweepService
{
  public:
    explicit SweepService(const ServiceConfig &cfg);
    ~SweepService();
    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Open (or resume) the journal, expand the campaign grid,
     * verify a resumed journal matches it (grid fingerprint),
     * restore terminal jobs and enqueue the rest. @return false
     * with a structured message on an unusable journal or a
     * campaign mismatch.
     */
    bool start(std::string &error);

    /**
     * Run the worker pool until every job is terminal, or the
     * service crashes (injected restart / failed journal append).
     * @return true when all jobs are terminal.
     */
    bool drain();

    bool crashed() const { return crashedFlag.load(); }
    /** Structured reason for the last crash ("" if none). */
    std::string crashReason() const;
    bool allTerminal() const;
    bool degraded() const { return degradedFlag.load(); }

    const ServiceCounters &counters() const { return stats; }
    const CampaignSpec &campaign() const { return spec; }
    /** Torn-tail diagnostic from journal replay ("" if clean). */
    const std::string &replayDiagnostic() const { return tornDiag; }

    /**
     * The deterministic aggregate: every completed row in grid item
     * order (grid::renderResultsDoc). Byte-identical across worker
     * counts, fault schedules and restarts once all jobs complete.
     */
    std::string resultsDocument() const;

    /** The completed rows alone (compact JSON, item order) — for
     *  front-ends composing their own aggregate documents. */
    std::vector<std::string> completedRows() const;

    /** One-object JSON status summary (counts, lanes, degraded). */
    std::string statusJson() const;

    /** @return rows that completed with a row-level failure. */
    unsigned failedJobs() const;

    /** Compact the journal (terminal jobs only) in place. */
    bool compact(std::string &error);

  private:
    struct QueuedJob
    {
        std::uint64_t jobId = 0;
        /** Preempted checkpoint image (in-memory only). */
        std::vector<std::uint8_t> resumeImage;
    };

    Admission admitJob(std::uint64_t job_id, Lane lane);
    void workerLoop();
    bool popJob(QueuedJob &out);
    void runJob(QueuedJob &&job);
    void recordCrash(const std::string &reason);
    void writeQuarantineBundle(std::uint64_t job_id,
                               const JobState &job);
    std::size_t pendingLocked() const;
    static Lane laneForItem(const SweepItem &item);

    ServiceConfig cfg;
    ServiceFaultInjector chaos;
    WorkerSupervisor supervisor;
    std::vector<SweepItem> items;
    CampaignSpec spec;
    JobJournal journal;
    std::string tornDiag;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<QueuedJob> lanes[kNumLanes];
    std::vector<JobState> jobs; ///< indexed by jobId
    std::size_t inFlight = 0;   ///< jobs popped, not yet re-queued
    ServiceCounters stats;
    bool stopping = false;
    std::atomic<bool> crashedFlag{false};
    std::atomic<bool> degradedFlag{false};
    std::string crashMsg;
};

} // namespace svc::service

#endif // SVC_SERVICE_SERVICE_HH
