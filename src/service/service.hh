/**
 * @file
 * The fault-tolerant sweep job service: a supervised worker pool
 * executing a sweep campaign (one job per grid item) behind a
 * crash-safe write-ahead job journal.
 *
 * Lifecycle: construct with a ServiceConfig, start() (which either
 * begins a fresh campaign — journaling CAMP + one SUBM per admitted
 * item — or replays an existing journal and re-queues every
 * non-terminal job), then drain() to run the worker pool until all
 * jobs are terminal. drain() returns false when the service
 * "crashed" (an injected whole-service restart or a failed journal
 * append); the front-end then constructs a fresh service on the
 * same journal and calls start()/drain() again — completed jobs are
 * restored from the journal, never re-executed.
 *
 * Supervision: each attempt is journaled (STRT) before it runs;
 * worker death (chaos kill), hangs (reaped by the per-job
 * forward-progress deadline) and row-level failures count as
 * strikes, retried with exponential backoff + deterministic jitter
 * up to maxAttempts, after which the job is quarantined with a
 * diagnostic bundle (JSON repro: the sweep_runner and
 * fault_minimizer command lines that replay the cell in isolation).
 *
 * Long jobs: when sliceCycles > 0, program-backed bench jobs run
 * preemptible slices (bench::runProgramSliced); a preempted job
 * keeps its checkpoint image in memory and re-queues at the back of
 * its lane, so one long job cannot starve the pool. The image is
 * deliberately not journaled: a restart simply re-runs the job from
 * scratch, which is always correct (items are pure).
 *
 * Admission and degradation: the queue is bounded
 * (queueCapacity; overflow → Rejected) and the service enters
 * overload mode when pending work exceeds overloadThreshold —
 * low-priority submissions are shed (journaled SHED, so the
 * decision survives restarts) until pressure drops. Campaign
 * expansion maps baseline/low-value cells to the Low lane, so
 * degradation shrinks grid fan-out before it touches primary cells.
 *
 * Determinism: jobs are pure functions of their grid item, rows are
 * rendered by grid::renderRow into compact JSON, journaled verbatim
 * in CMPL records, and aggregated in item order — so the results
 * document is byte-identical no matter the worker count, retry
 * schedule, preemption points, or crash/restart history.
 */

#ifndef SVC_SERVICE_SERVICE_HH
#define SVC_SERVICE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos.hh"
#include "service/grid.hh"
#include "service/job_journal.hh"

namespace svc::service
{

struct ServiceConfig
{
    std::string journalPath = "sweep.journal";
    std::string grid = "smoke";
    unsigned scale = 1;
    trace_io::StimulusOptions stim; ///< --workload/--seed narrowing

    unsigned workers = 2;
    unsigned maxAttempts = 3; ///< strikes before quarantine
    unsigned backoffBaseMs = 1;
    unsigned backoffMaxMs = 32;
    /** Preemption quantum for program jobs; 0 = never preempt. */
    Cycle sliceCycles = 0;
    /** Per-attempt forward-progress deadline (0 = none): abandon an
     *  attempt if no instruction commits for this many cycles. */
    Cycle deadlineCycles = 0;

    std::size_t queueCapacity = 1u << 16;
    /** Pending jobs above this → overload mode (shed Low lane).
     *  0 = never degrade. */
    std::size_t overloadThreshold = 0;

    /** Quarantine bundle path prefix ("" disables bundles). */
    std::string quarantinePrefix = "sweep";

    ChaosConfig chaos;
};

/** Admission verdict for one submission. */
enum class Admission { Accepted, Rejected, Shed };

struct ServiceCounters
{
    std::uint64_t submitted = 0; ///< accepted this incarnation
    std::uint64_t restored = 0;  ///< terminal jobs replayed from
                                 ///< the journal (not re-run)
    std::uint64_t requeued = 0;  ///< non-terminal jobs re-queued on
                                 ///< resume
    std::uint64_t started = 0;   ///< attempts begun (STRT records)
    std::uint64_t itemRuns = 0;  ///< grid items actually executed
    std::uint64_t completed = 0;
    std::uint64_t retries = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
};

class SweepService
{
  public:
    explicit SweepService(const ServiceConfig &cfg);
    ~SweepService();
    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Open (or resume) the journal, expand the campaign grid,
     * verify a resumed journal matches it (grid fingerprint),
     * restore terminal jobs and enqueue the rest. @return false
     * with a structured message on an unusable journal or a
     * campaign mismatch.
     */
    bool start(std::string &error);

    /**
     * Run the worker pool until every job is terminal, or the
     * service crashes (injected restart / failed journal append).
     * @return true when all jobs are terminal.
     */
    bool drain();

    bool crashed() const { return crashedFlag.load(); }
    /** Structured reason for the last crash ("" if none). */
    std::string crashReason() const;
    bool allTerminal() const;
    bool degraded() const { return degradedFlag.load(); }

    const ServiceCounters &counters() const { return stats; }
    const CampaignSpec &campaign() const { return spec; }
    /** Torn-tail diagnostic from journal replay ("" if clean). */
    const std::string &replayDiagnostic() const { return tornDiag; }

    /**
     * The deterministic aggregate: every completed row in grid item
     * order (grid::renderResultsDoc). Byte-identical across worker
     * counts, fault schedules and restarts once all jobs complete.
     */
    std::string resultsDocument() const;

    /** The completed rows alone (compact JSON, item order) — for
     *  front-ends composing their own aggregate documents. */
    std::vector<std::string> completedRows() const;

    /** One-object JSON status summary (counts, lanes, degraded). */
    std::string statusJson() const;

    /** @return rows that completed with a row-level failure. */
    unsigned failedJobs() const;

    /** Compact the journal (terminal jobs only) in place. */
    bool compact(std::string &error);

  private:
    struct QueuedJob
    {
        std::uint64_t jobId = 0;
        /** Preempted checkpoint image (in-memory only). */
        std::vector<std::uint8_t> resumeImage;
    };

    Admission admitJob(std::uint64_t job_id, Lane lane);
    void workerLoop();
    bool popJob(QueuedJob &out);
    void runJob(QueuedJob &&job);
    void recordCrash(const std::string &reason);
    void writeQuarantineBundle(std::uint64_t job_id,
                               const JobState &job);
    std::size_t pendingLocked() const;
    static Lane laneForItem(const SweepItem &item);

    ServiceConfig cfg;
    ServiceFaultInjector chaos;
    std::vector<SweepItem> items;
    CampaignSpec spec;
    JobJournal journal;
    std::string tornDiag;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<QueuedJob> lanes[kNumLanes];
    std::vector<JobState> jobs; ///< indexed by jobId
    std::size_t inFlight = 0;   ///< jobs popped, not yet re-queued
    ServiceCounters stats;
    bool stopping = false;
    std::atomic<bool> crashedFlag{false};
    std::atomic<bool> degradedFlag{false};
    std::string crashMsg;
};

} // namespace svc::service

#endif // SVC_SERVICE_SERVICE_HH
