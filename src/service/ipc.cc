#include "service/ipc.hh"

#include <cstdio>

#include "common/posix_io.hh"
#include "common/snapshot.hh"

namespace svc::service
{
namespace
{

/** tag (4) + length (8) + trailing checksum (8) — the SVCJRNL1
 *  record overhead, reused byte for byte. */
constexpr std::size_t kFrameOverhead = 20;

std::uint32_t
getLeU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getLeU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
putLeU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putLeU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

} // namespace

const char *
ipcTagName(std::uint32_t tag)
{
    switch (static_cast<IpcTag>(tag)) {
    case IpcTag::Hello: return "HELO";
    case IpcTag::Heartbeat: return "HBEA";
    case IpcTag::Row: return "ROWR";
    case IpcTag::Strike: return "STRK";
    }
    return "?";
}

std::size_t
ipcFrameBytes(std::size_t payloadBytes)
{
    return payloadBytes + kFrameOverhead;
}

std::vector<std::uint8_t>
encodeIpcFrame(IpcTag tag, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(ipcFrameBytes(payload.size()));
    putLeU32(frame, static_cast<std::uint32_t>(tag));
    putLeU64(frame, payload.size());
    frame.insert(frame.end(), payload.begin(), payload.end());
    putLeU64(frame, snapshotFnv1a(frame.data(), frame.size()));
    return frame;
}

void
FrameDecoder::feed(const std::uint8_t *data, std::size_t n)
{
    if (tornFlag)
        return; // bytes after a tear are untrusted; drop them
    buf.insert(buf.end(), data, data + n);
}

bool
FrameDecoder::next(IpcFrame &out)
{
    if (tornFlag)
        return false;
    const std::size_t avail = buf.size() - pos;
    if (avail < 12)
        return false; // frame header not complete yet
    const std::uint8_t *p = buf.data() + pos;
    const std::uint32_t tag = getLeU32(p);
    const std::uint64_t len = getLeU64(p + 4);
    if (len > kMaxIpcPayload) {
        // A length this large is corruption, not a frame: latch the
        // tear rather than waiting for bytes that never come (or
        // allocating an attacker-chosen buffer).
        tornFlag = true;
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "ipc: frame length %llu exceeds the %llu-byte "
                      "bound (corrupt stream)",
                      static_cast<unsigned long long>(len),
                      static_cast<unsigned long long>(kMaxIpcPayload));
        tornError = msg;
        return false;
    }
    const std::size_t need =
        ipcFrameBytes(static_cast<std::size_t>(len));
    if (avail < need)
        return false; // torn-for-now: the tail may still arrive
    const std::size_t payloadAt = 12;
    const std::size_t checksumAt =
        payloadAt + static_cast<std::size_t>(len);
    const std::uint64_t want = getLeU64(p + checksumAt);
    const std::uint64_t got = snapshotFnv1a(p, checksumAt);
    if (want != got) {
        tornFlag = true;
        tornError = "ipc: frame checksum mismatch (torn or corrupt "
                    "stream; frames before the tear are intact)";
        return false;
    }
    out.tag = tag;
    out.payload.assign(p + payloadAt, p + checksumAt);
    pos += need;
    // Compact once the consumed prefix dominates, keeping the
    // buffer bounded across a long heartbeat stream.
    if (pos > 4096 && pos * 2 > buf.size()) {
        buf.erase(buf.begin(), buf.begin() + pos);
        pos = 0;
    }
    return true;
}

bool
writeIpcFrame(int fd, IpcTag tag,
              const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> frame =
        encodeIpcFrame(tag, payload);
    return writeFdAll(fd, frame.data(), frame.size());
}

} // namespace svc::service
