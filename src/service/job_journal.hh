/**
 * @file
 * The sweep service's write-ahead job journal: campaign-level record
 * encodings over the generic crash-safe journal atoms
 * (common/journal.hh), plus the replay state machine that rebuilds
 * job state after a crash or restart.
 *
 * Record protocol (every payload is SnapshotWriter-serialized):
 *
 *   CAMP  campaign spec: grid, scale, stimulus narrowing, item
 *         count, grid fingerprint. Always the first record.
 *   SUBM  job admitted: jobId (== grid item index), item id, lane.
 *   STRT  attempt began: jobId, attempt number. Written *before*
 *         the job executes (write-ahead), so a crash mid-job leaves
 *         an unmatched STRT and replay re-queues the job.
 *   RTRY  attempt failed: jobId, attempt, structured reason.
 *   CMPL  job finished: jobId, failed flag, rendered result row
 *         (compact JSON, spliced verbatim into the results doc —
 *         the byte-identical-aggregation property rests on this).
 *   QUAR  job quarantined after repeated strikes: jobId, strikes,
 *         reason. Sticky: a quarantined job is never re-queued.
 *   SHED  job shed by overload control: jobId. Sticky.
 *
 * Replay semantics (replayJobJournal):
 *   - CMPL is durable: the job never runs again and its row is
 *     restored byte-for-byte.
 *   - STRT without a matching CMPL/QUAR means the worker died
 *     mid-attempt: the job is re-queued (the attempt still counts
 *     as a strike).
 *   - A torn tail (crash mid-append) is tolerated: records before
 *     the tear apply, the tear is reported as a structured
 *     diagnostic, and a job whose CMPL was torn simply re-runs —
 *     by construction it reproduces the same row.
 */

#ifndef SVC_SERVICE_JOB_JOURNAL_HH
#define SVC_SERVICE_JOB_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/journal.hh"

namespace svc::service
{

/** Journal record tags (ASCII fourcc, little-endian). */
enum class JobTag : std::uint32_t
{
    Campaign   = 0x504d4143, // "CAMP"
    Submit     = 0x4d425553, // "SUBM"
    Start      = 0x54525453, // "STRT"
    Retry      = 0x59525452, // "RTRY"
    Complete   = 0x4c504d43, // "CMPL"
    Quarantine = 0x52415551, // "QUAR"
    Shed       = 0x44454853, // "SHED"
};

/** Priority lanes, highest first. */
enum class Lane : std::uint32_t { High = 0, Normal = 1, Low = 2 };

inline constexpr unsigned kNumLanes = 3;

const char *laneName(Lane lane);

/** The durable identity of a campaign: everything needed to
 *  re-expand the same grid on resume. */
struct CampaignSpec
{
    std::string grid;
    unsigned scale = 1;
    std::string workload; ///< --workload narrowing ("" = none)
    std::string traceIn;  ///< --trace-in (trace grid only)
    std::uint64_t seed = 12345;
    bool seedSet = false;
    std::uint64_t itemCount = 0;
    std::uint64_t gridFingerprint = 0;
};

/** Replayed per-job state (jobId == grid item index). */
struct JobState
{
    std::string itemId;
    Lane lane = Lane::Normal;
    bool submitted = false;
    unsigned attempts = 0; ///< highest attempt number journaled
    /** A STRT with no matching CMPL/QUAR/RTRY (died mid-attempt). */
    bool inFlight = false;
    bool completed = false;
    bool failed = false; ///< row-level failure (completed only)
    bool quarantined = false;
    bool shed = false;
    std::string rowJson; ///< verbatim journaled row (completed)
    std::string reason;  ///< last retry/quarantine reason

    // Exit diagnostics from the last process-isolated attempt.
    // Transient: never journaled (a restart loses them), captured
    // into quarantine bundles as repro color, not replayed state.
    std::string exitClass;  ///< exitClassName() ("" = thread mode)
    int rawStatus = -1;     ///< raw waitpid(2) status
    int childPid = -1;      ///< the attempt's child pid
    std::vector<std::string> finalFrames; ///< child's last frames

    bool terminal() const { return completed || quarantined || shed; }
};

/** Result of replaying a job journal. */
struct JournalReplay
{
    /**
     * The journal yielded a usable campaign (header + CAMP record
     * decoded). A torn tail does NOT clear this — check torn/
     * tornError for the tail diagnostic.
     */
    bool ok = false;
    /** Structured diagnostic when !ok (missing file, bad header,
     *  undecodable record, out-of-range jobId...). */
    std::string error;
    /** The scan found a torn/corrupt record at the tail. */
    bool torn = false;
    std::string tornError;
    CampaignSpec campaign;
    /** Indexed by jobId; size == campaign.itemCount. */
    std::vector<JobState> jobs;
    std::uint64_t recordsApplied = 0;
};

/** Decode + state-machine replay of a journal image or file. A
 *  missing or headerless file yields ok=false with a structured
 *  message; it never crashes on any byte sequence. */
JournalReplay replayJobJournal(const std::vector<std::uint8_t> &image);
JournalReplay replayJobJournalFile(const std::string &path);

/**
 * Typed append interface over JournalWriter. Not thread-safe; the
 * service serializes appends under its own lock.
 */
class JobJournal
{
  public:
    bool open(const std::string &path, std::string &error)
    {
        return writer.open(path, error);
    }
    void close() { writer.close(); }
    bool isOpen() const { return writer.isOpen(); }
    const std::string &path() const { return writer.path(); }
    void setWriteHook(JournalWriteHook hook)
    {
        writer.setWriteHook(std::move(hook));
    }
    std::uint64_t appended() const { return writer.appended(); }

    bool appendCampaign(const CampaignSpec &spec, std::string &error);
    bool appendSubmit(std::uint64_t job_id, const std::string &item_id,
                      Lane lane, std::string &error);
    bool appendStart(std::uint64_t job_id, unsigned attempt,
                     std::string &error);
    bool appendRetry(std::uint64_t job_id, unsigned attempt,
                     const std::string &reason, std::string &error);
    bool appendComplete(std::uint64_t job_id, bool failed,
                        const std::string &row_json,
                        std::string &error);
    bool appendQuarantine(std::uint64_t job_id, unsigned strikes,
                          const std::string &reason,
                          std::string &error);
    bool appendShed(std::uint64_t job_id, std::string &error);

  private:
    JournalWriter writer;
};

/**
 * Compact a journal: write a fresh journal holding the campaign
 * record plus, per submitted job, one SUBM and at most one state
 * record (CMPL/QUAR/SHED for terminal jobs, a folded RTRY carrying
 * the strike count for unfinished ones — per-attempt history is
 * dropped), and publish it over @p path with an atomic rename.
 * Also the torn-tail repair path: the compacted journal ends on a
 * record boundary, so appends can safely resume after a tear.
 */
bool compactJobJournal(const std::string &path,
                       const CampaignSpec &campaign,
                       const std::vector<JobState> &jobs,
                       std::string &error);

} // namespace svc::service

#endif // SVC_SERVICE_JOB_JOURNAL_HH
