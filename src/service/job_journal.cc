#include "service/job_journal.hh"

#include <cstdio>

#include "common/snapshot.hh"

namespace svc::service
{
namespace
{

constexpr std::uint32_t kCampaignSpecVersion = 1;

std::vector<std::uint8_t>
encodeCampaign(const CampaignSpec &spec)
{
    SnapshotWriter w;
    w.putU32(kCampaignSpecVersion);
    w.putString(spec.grid);
    w.putU32(spec.scale);
    w.putString(spec.workload);
    w.putString(spec.traceIn);
    w.putU64(spec.seed);
    w.putBool(spec.seedSet);
    w.putU64(spec.itemCount);
    w.putU64(spec.gridFingerprint);
    return w.bytes();
}

bool
decodeCampaign(const std::vector<std::uint8_t> &payload,
               CampaignSpec &spec, std::string &error)
{
    SnapshotReader r(payload);
    const std::uint32_t ver = r.getU32();
    if (r.ok() && ver != kCampaignSpecVersion) {
        error = "journal: unsupported campaign record version " +
                std::to_string(ver);
        return false;
    }
    spec.grid = r.getString();
    spec.scale = r.getU32();
    spec.workload = r.getString();
    spec.traceIn = r.getString();
    spec.seed = r.getU64();
    spec.seedSet = r.getBool();
    spec.itemCount = r.getU64();
    spec.gridFingerprint = r.getU64();
    if (!r.ok()) {
        error = "journal: malformed campaign record: " + r.error();
        return false;
    }
    return true;
}

std::string
recordError(const char *what, std::uint64_t index)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "journal: record %llu: %s",
                  static_cast<unsigned long long>(index), what);
    return buf;
}

} // namespace

const char *
laneName(Lane lane)
{
    switch (lane) {
    case Lane::High: return "high";
    case Lane::Normal: return "normal";
    case Lane::Low: return "low";
    }
    return "?";
}

JournalReplay
replayJobJournal(const std::vector<std::uint8_t> &image)
{
    JournalReplay out;
    const JournalScan scan = scanJournal(image);
    if (!scan.headerOk) {
        out.error = scan.error;
        return out;
    }
    out.torn = scan.torn;
    out.tornError = scan.error;

    for (std::size_t i = 0; i < scan.records.size(); ++i) {
        const JournalRecord &rec = scan.records[i];
        if (i == 0) {
            if (rec.tag !=
                static_cast<std::uint32_t>(JobTag::Campaign)) {
                out.error = recordError(
                    "journal does not begin with a campaign record",
                    i);
                return out;
            }
            if (!decodeCampaign(rec.payload, out.campaign,
                                out.error))
                return out;
            // itemCount is validated against the re-expanded grid
            // by the service; here it only bounds the state table
            // (the record is checksummed, so this is a version
            // mismatch guard, not a corruption guard).
            out.jobs.assign(
                static_cast<std::size_t>(out.campaign.itemCount),
                JobState{});
            ++out.recordsApplied;
            continue;
        }

        SnapshotReader r(rec.payload);
        const std::uint64_t job_id = r.getU64();
        if (!r.ok() || job_id >= out.jobs.size()) {
            out.error = recordError("job id out of range", i);
            return out;
        }
        JobState &job = out.jobs[static_cast<std::size_t>(job_id)];

        switch (static_cast<JobTag>(rec.tag)) {
        case JobTag::Campaign:
            out.error = recordError("duplicate campaign record", i);
            return out;
        case JobTag::Submit:
            job.itemId = r.getString();
            job.lane = static_cast<Lane>(r.getU32());
            job.submitted = true;
            break;
        case JobTag::Start: {
            const std::uint32_t attempt = r.getU32();
            if (attempt > job.attempts)
                job.attempts = attempt;
            job.inFlight = true;
            break;
        }
        case JobTag::Retry: {
            // Fold the attempt number here too (not just via STRT):
            // compaction preserves strike counts of unfinished jobs
            // as a single RTRY record.
            const std::uint32_t attempt = r.getU32();
            if (attempt > job.attempts)
                job.attempts = attempt;
            job.reason = r.getString();
            job.inFlight = false;
            break;
        }
        case JobTag::Complete:
            job.failed = r.getBool();
            job.rowJson = r.getString();
            job.completed = true;
            job.inFlight = false;
            break;
        case JobTag::Quarantine: {
            // Fold strikes into attempts so the count survives
            // compaction (QUAR is the only record a compacted
            // journal keeps for a quarantined job).
            const std::uint32_t strikes = r.getU32();
            if (strikes > job.attempts)
                job.attempts = strikes;
            job.reason = r.getString();
            job.quarantined = true;
            job.inFlight = false;
            break;
        }
        case JobTag::Shed:
            job.shed = true;
            break;
        default:
            out.error = recordError("unknown record tag", i);
            return out;
        }
        if (!r.ok()) {
            out.error =
                recordError("malformed record payload", i) + ": " +
                r.error();
            return out;
        }
        ++out.recordsApplied;
    }

    if (out.jobs.empty() && scan.records.empty()) {
        out.error = "journal: empty (no campaign record)";
        return out;
    }
    out.ok = true;
    return out;
}

JournalReplay
replayJobJournalFile(const std::string &path)
{
    std::vector<std::uint8_t> image;
    std::string err;
    if (!readSnapshotFile(path, image, err)) {
        JournalReplay out;
        out.error = "journal: " + err;
        return out;
    }
    return replayJobJournal(image);
}

bool
JobJournal::appendCampaign(const CampaignSpec &spec,
                           std::string &error)
{
    return writer.append(
        static_cast<std::uint32_t>(JobTag::Campaign),
        encodeCampaign(spec), error);
}

bool
JobJournal::appendSubmit(std::uint64_t job_id,
                         const std::string &item_id, Lane lane,
                         std::string &error)
{
    SnapshotWriter w;
    w.putU64(job_id);
    w.putString(item_id);
    w.putU32(static_cast<std::uint32_t>(lane));
    return writer.append(static_cast<std::uint32_t>(JobTag::Submit),
                         w.bytes(), error);
}

bool
JobJournal::appendStart(std::uint64_t job_id, unsigned attempt,
                        std::string &error)
{
    SnapshotWriter w;
    w.putU64(job_id);
    w.putU32(attempt);
    return writer.append(static_cast<std::uint32_t>(JobTag::Start),
                         w.bytes(), error);
}

bool
JobJournal::appendRetry(std::uint64_t job_id, unsigned attempt,
                        const std::string &reason, std::string &error)
{
    SnapshotWriter w;
    w.putU64(job_id);
    w.putU32(attempt);
    w.putString(reason);
    return writer.append(static_cast<std::uint32_t>(JobTag::Retry),
                         w.bytes(), error);
}

bool
JobJournal::appendComplete(std::uint64_t job_id, bool failed,
                           const std::string &row_json,
                           std::string &error)
{
    SnapshotWriter w;
    w.putU64(job_id);
    w.putBool(failed);
    w.putString(row_json);
    return writer.append(
        static_cast<std::uint32_t>(JobTag::Complete), w.bytes(),
        error);
}

bool
JobJournal::appendQuarantine(std::uint64_t job_id, unsigned strikes,
                             const std::string &reason,
                             std::string &error)
{
    SnapshotWriter w;
    w.putU64(job_id);
    w.putU32(strikes);
    w.putString(reason);
    return writer.append(
        static_cast<std::uint32_t>(JobTag::Quarantine), w.bytes(),
        error);
}

bool
JobJournal::appendShed(std::uint64_t job_id, std::string &error)
{
    SnapshotWriter w;
    w.putU64(job_id);
    return writer.append(static_cast<std::uint32_t>(JobTag::Shed),
                         w.bytes(), error);
}

bool
compactJobJournal(const std::string &path,
                  const CampaignSpec &campaign,
                  const std::vector<JobState> &jobs,
                  std::string &error)
{
    const std::string tmp = path + ".compact.tmp";
    std::remove(tmp.c_str());
    {
        JobJournal j;
        if (!j.open(tmp, error))
            return false;
        if (!j.appendCampaign(campaign, error))
            return false;
        for (std::size_t id = 0; id < jobs.size(); ++id) {
            const JobState &job = jobs[id];
            if (!job.submitted)
                continue;
            if (!j.appendSubmit(id, job.itemId, job.lane, error))
                return false;
            bool ok = true;
            if (job.completed)
                ok = j.appendComplete(id, job.failed, job.rowJson,
                                      error);
            else if (job.quarantined)
                ok = j.appendQuarantine(id, job.attempts, job.reason,
                                        error);
            else if (job.shed)
                ok = j.appendShed(id, error);
            else if (job.attempts > 0)
                // Preserve the strike count of an unfinished job as
                // a single folded retry record.
                ok = j.appendRetry(id, job.attempts, job.reason,
                                   error);
            if (!ok)
                return false;
        }
        j.close();
    }
    return atomicReplaceFile(tmp, path, error);
}

} // namespace svc::service
