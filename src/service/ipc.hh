/**
 * @file
 * Pipe IPC framing between the sweep service daemon and its
 * process-isolated worker children (service/process_worker.hh).
 *
 * A child's result stream reuses the SVCJRNL1 per-record framing
 * discipline (common/journal.hh) verbatim — the same tag/length/
 * payload/FNV-1a layout, minus the file header (a pipe has no
 * resumable identity to version):
 *
 *   u32  tag       frame kind (ASCII fourcc)
 *   u64  length    payload bytes
 *   ...  payload
 *   u64  checksum  FNV-1a over tag + length + payload bytes
 *
 * The discipline buys the same crash property the journal has: a
 * child dying mid-write (SIGKILL between write(2) calls, a torn
 * pipe buffer) tears at most the tail frame. FrameDecoder never
 * yields a frame whose checksum does not verify, never crashes on
 * any byte sequence, never allocates beyond the frame-size bound,
 * and reports the torn/garbage tail as a structured diagnostic —
 * so the supervisor can trust every decoded frame even though the
 * peer is, by assumption, a process that may die at any byte.
 *
 * Frame protocol (child → parent):
 *
 *   HELO  child is alive: protocol version, child pid, jobId,
 *         attempt. Always first.
 *   HBEA  heartbeat (sequence number), emitted by a dedicated child
 *         thread every heartbeatMillis — a wedged or SIGSTOPped
 *         child stops beating and the supervisor reaps it.
 *   ROWR  the attempt's result row: failed flag, rendered row JSON
 *         (the same bytes the thread backend would journal) and
 *         the structured row-failure description ("" if healthy).
 *   STRK  the attempt executed but struck out (e.g. in-child
 *         forward-progress deadline): structured reason.
 *
 * The parent never writes to the child; the attempt plan rides the
 * fork. Payloads are SnapshotWriter-encoded like every journal
 * record payload.
 */

#ifndef SVC_SERVICE_IPC_HH
#define SVC_SERVICE_IPC_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace svc::service
{

/** IPC frame tags (ASCII fourcc, little-endian). */
enum class IpcTag : std::uint32_t
{
    Hello     = 0x4f4c4548, // "HELO"
    Heartbeat = 0x41454248, // "HBEA"
    Row       = 0x52574f52, // "ROWR"
    Strike    = 0x4b525453, // "STRK"
};

const char *ipcTagName(std::uint32_t tag);

/** IPC protocol version carried in every HELO frame. */
inline constexpr std::uint32_t kIpcVersion = 1;

/**
 * Upper bound on a frame payload. Rows are compact single-line
 * JSON (a few KiB at most); anything larger is a corrupt length
 * field, and bounding it keeps a garbage stream from driving an
 * unbounded allocation in the supervisor.
 */
inline constexpr std::uint64_t kMaxIpcPayload = 1u << 20;

/** One intact frame recovered from the stream. */
struct IpcFrame
{
    std::uint32_t tag = 0;
    std::vector<std::uint8_t> payload;
};

/** Frame + framing overhead, in bytes, as written to the pipe. */
std::size_t ipcFrameBytes(std::size_t payloadBytes);

/** Encode one frame (tag + length + payload + checksum). */
std::vector<std::uint8_t>
encodeIpcFrame(IpcTag tag, const std::vector<std::uint8_t> &payload);

/**
 * Incremental decoder for a child's frame stream. Feed bytes as
 * they arrive; poll next() for intact frames. Once the stream is
 * torn (bad checksum, oversized length) the decoder latches the
 * diagnostic and yields nothing further — exactly the journal
 * scanner's torn-tail discipline, applied to a live stream.
 */
class FrameDecoder
{
  public:
    /** Append raw bytes from the pipe. Cheap; decoding is lazy. */
    void feed(const std::uint8_t *data, std::size_t n);

    /** @return true and fill @p out if an intact frame is ready. */
    bool next(IpcFrame &out);

    /** The stream hit a torn/corrupt frame; no more frames will be
     *  yielded (bytes after a tear cannot be trusted to re-align). */
    bool torn() const { return tornFlag; }

    /** Structured diagnostic for the tear ("" if none). */
    const std::string &error() const { return tornError; }

    /** Bytes fed but not yet consumed by an intact frame (the torn
     *  tail, once torn). */
    std::size_t pendingBytes() const { return buf.size() - pos; }

  private:
    std::vector<std::uint8_t> buf;
    std::size_t pos = 0; ///< start of the first undecoded frame
    bool tornFlag = false;
    std::string tornError;
};

/**
 * Frame, checksum and write one frame to @p fd with EINTR-retrying
 * full writes. @return false on a write error (e.g. EPIPE after
 * the supervisor gave up on the child).
 */
bool writeIpcFrame(int fd, IpcTag tag,
                   const std::vector<std::uint8_t> &payload);

} // namespace svc::service

#endif // SVC_SERVICE_IPC_HH
