#include "service/service.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"
#include "common/posix_io.hh"
#include "common/random.hh"
#include "mem/fault_injector.hh"

namespace svc::service
{
namespace
{

/** @return true if @p path exists (any kind of file). */
bool
fileExists(const std::string &path)
{
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        return true;
    }
    return false;
}

} // namespace

const char *
isolationName(Isolation iso)
{
    switch (iso) {
    case Isolation::Thread: return "thread";
    case Isolation::Process: return "process";
    }
    return "?";
}

Isolation
isolationFromName(const std::string &name, bool &ok)
{
    ok = true;
    if (name == "thread")
        return Isolation::Thread;
    if (name == "process")
        return Isolation::Process;
    ok = false;
    return Isolation::Thread;
}

SweepService::SweepService(const ServiceConfig &cfg)
    : cfg(cfg), chaos(cfg.chaos)
{}

SweepService::~SweepService() { journal.close(); }

Lane
SweepService::laneForItem(const SweepItem &item)
{
    // Fault cells are cheap, high-diagnostic-value probes: run them
    // first. Litmus baseline (ARB) cells are comparison points, not
    // primary results: first to go when the service degrades.
    if (item.kind == SweepItem::Fault)
        return Lane::High;
    if (item.kind == SweepItem::Litmus &&
        item.litmusBackend == litmus::Backend::Arb)
        return Lane::Low;
    return Lane::Normal;
}

std::size_t
SweepService::pendingLocked() const
{
    std::size_t n = inFlight;
    for (const auto &lane : lanes)
        n += lane.size();
    return n;
}

Admission
SweepService::admitJob(std::uint64_t job_id, Lane lane)
{
    JobState &job = jobs[static_cast<std::size_t>(job_id)];
    const SweepItem &item = items[static_cast<std::size_t>(job_id)];
    if (pendingLocked() >= cfg.queueCapacity) {
        ++stats.rejected;
        return Admission::Rejected;
    }
    const bool overloaded = cfg.overloadThreshold > 0 &&
                            pendingLocked() >= cfg.overloadThreshold;
    if (overloaded)
        degradedFlag.store(true);
    std::string err;
    if (overloaded && lane == Lane::Low) {
        // SUBM first so the journal stays self-describing: a replay
        // learns the shed job's identity and lane, same as the
        // compacted form.
        if (!journal.appendSubmit(job_id, item.id, lane, err) ||
            !journal.appendShed(job_id, err)) {
            recordCrash(err);
            return Admission::Rejected;
        }
        job.itemId = item.id;
        job.lane = lane;
        job.submitted = true;
        job.shed = true;
        ++stats.shed;
        return Admission::Shed;
    }
    if (!journal.appendSubmit(job_id, item.id, lane, err)) {
        recordCrash(err);
        return Admission::Rejected;
    }
    job.itemId = item.id;
    job.lane = lane;
    job.submitted = true;
    lanes[static_cast<unsigned>(lane)].push_back({job_id, {}});
    ++stats.submitted;
    return Admission::Accepted;
}

bool
SweepService::start(std::string &error)
{
    if (cfg.isolation == Isolation::Thread &&
        isRealSignalFault(cfg.chaos.kind)) {
        // A real SIGSEGV/SIGKILL/OOM on a pool thread takes the
        // daemon down with it — refuse up front, structurally,
        // rather than let the user discover it as a dead process.
        error = std::string("chaos kind '") +
                serviceFaultName(cfg.chaos.kind) +
                "' injects a real process fault, which thread "
                "workers cannot survive; use --isolation=process";
        return false;
    }
    const bool resuming = fileExists(cfg.journalPath);
    JournalReplay replay;
    if (resuming) {
        replay = replayJobJournalFile(cfg.journalPath);
        if (!replay.ok) {
            error = "cannot resume campaign from '" +
                    cfg.journalPath + "': " + replay.error;
            return false;
        }
        // The journaled campaign spec is authoritative on resume:
        // the grid is re-expanded from what the journal records,
        // not from this incarnation's flags, so `resume --journal
        // X` alone always continues the same campaign (item ids do
        // not encode scale or seed, so trusting the flags could
        // silently re-expand a *different* grid under the same
        // fingerprint).
        cfg.grid = replay.campaign.grid;
        cfg.scale = replay.campaign.scale;
        cfg.stim.workload = replay.campaign.workload;
        cfg.stim.traceIn = replay.campaign.traceIn;
        cfg.stim.seed = replay.campaign.seed;
        cfg.stim.seedSet = replay.campaign.seedSet;
    }

    if (!isKnownGrid(cfg.grid)) {
        error = "unknown grid '" + cfg.grid + "' (" +
                knownGridNames() + ")";
        return false;
    }
    items = buildGrid(cfg.grid, cfg.scale, cfg.stim);
    spec.grid = cfg.grid;
    spec.scale = cfg.scale;
    spec.workload = cfg.stim.workload;
    spec.traceIn = cfg.stim.traceIn;
    spec.seed = cfg.stim.seed;
    spec.seedSet = cfg.stim.seedSet;
    spec.itemCount = items.size();
    spec.gridFingerprint = gridFingerprint(items);

    std::lock_guard<std::mutex> lock(mu);
    jobs.assign(items.size(), JobState{});

    if (resuming) {
        // With the spec adopted, a mismatch here means the grid
        // *definition* changed underneath the journal (code drift
        // between incarnations) — refuse rather than mis-attribute
        // journaled rows to different cells.
        if (replay.campaign.gridFingerprint !=
                spec.gridFingerprint ||
            replay.campaign.itemCount != spec.itemCount) {
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                "journal '%s' was written for a different campaign "
                "(grid %s, %llu items, fingerprint %016llx; "
                "this config expands to %zu items, %016llx)",
                cfg.journalPath.c_str(),
                replay.campaign.grid.c_str(),
                static_cast<unsigned long long>(
                    replay.campaign.itemCount),
                static_cast<unsigned long long>(
                    replay.campaign.gridFingerprint),
                items.size(),
                static_cast<unsigned long long>(
                    spec.gridFingerprint));
            error = buf;
            return false;
        }
        if (replay.torn)
            tornDiag = replay.tornError;
        jobs = replay.jobs;
        // Compaction doubles as torn-tail repair: the rewritten
        // journal ends on a record boundary, so it is always safe
        // to append to (appending after a tear would bury every
        // later record behind the corrupt bytes).
        if (!compactJobJournal(cfg.journalPath, spec, jobs, error))
            return false;
    }

    if (!journal.open(cfg.journalPath, error))
        return false;
    journal.setWriteHook(chaos.journalHook());

    if (!resuming) {
        if (!journal.appendCampaign(spec, error))
            return false;
    }

    for (std::size_t id = 0; id < jobs.size(); ++id) {
        JobState &job = jobs[id];
        if (job.terminal()) {
            ++stats.restored;
            continue;
        }
        if (job.submitted) {
            // Replayed but unfinished (possibly mid-attempt when
            // the previous incarnation died): re-queue. Any
            // preemption checkpoint died with that process; the
            // job re-runs from scratch, which is always correct.
            job.inFlight = false;
            lanes[static_cast<unsigned>(job.lane)].push_back(
                {id, {}});
            ++stats.requeued;
            continue;
        }
        if (admitJob(id, laneForItem(items[id])) ==
            Admission::Rejected) {
            if (crashedFlag.load())
                break; // journal failure: resumable via restart
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "queue capacity %zu cannot admit grid "
                          "item %zu of %zu",
                          cfg.queueCapacity, id, jobs.size());
            error = buf;
            return false;
        }
    }
    return true;
}

void
SweepService::recordCrash(const std::string &reason)
{
    bool expected = false;
    if (crashedFlag.compare_exchange_strong(expected, true))
        crashMsg = reason;
    stopping = true;
    cv.notify_all();
}

std::string
SweepService::crashReason() const
{
    std::lock_guard<std::mutex> lock(mu);
    return crashMsg;
}

bool
SweepService::allTerminal() const
{
    std::lock_guard<std::mutex> lock(mu);
    return std::all_of(jobs.begin(), jobs.end(),
                       [](const JobState &j) { return j.terminal(); });
}

bool
SweepService::popJob(QueuedJob &out)
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        if (stopping)
            return false;
        for (auto &lane : lanes) {
            if (!lane.empty()) {
                out = std::move(lane.front());
                lane.pop_front();
                ++inFlight;
                return true;
            }
        }
        if (inFlight == 0)
            return false; // drained: no queued work, none running
        cv.wait(lock);
    }
}

void
SweepService::workerLoop()
{
    QueuedJob job;
    while (popJob(job))
        runJob(std::move(job));
    // This worker is exiting because the pool looks drained or the
    // service is stopping; wake the others so they re-check.
    cv.notify_all();
}

void
SweepService::runJob(QueuedJob &&queued)
{
    const std::uint64_t id = queued.jobId;
    const SweepItem &item = items[static_cast<std::size_t>(id)];
    unsigned attempt = 0;
    const bool resumed_slice = !queued.resumeImage.empty();

    {
        std::lock_guard<std::mutex> lock(mu);
        JobState &job = jobs[static_cast<std::size_t>(id)];
        // A resumed slice continues its attempt; a fresh dispatch
        // starts a new one. Either way the STRT is write-ahead: it
        // hits the journal before any work happens, so a crash
        // mid-job replays as an unmatched start and re-queues.
        attempt = resumed_slice ? job.attempts : job.attempts + 1;
        job.attempts = attempt;
        job.inFlight = true;
        std::string err;
        if (!journal.appendStart(id, attempt, err)) {
            --inFlight;
            recordCrash(err);
            return;
        }
        ++stats.started;
    }

    // ---- execute, unlocked ----
    ItemResult result;
    bench::SliceOutcome outcome = bench::SliceOutcome::Completed;
    std::string strike_reason;
    bool executed = false;
    bool have_row = false; ///< row pre-rendered by a worker child
    std::string row_json, row_failure;
    ProcessOutcome pout;
    bool process_attempt = false;

    // Real-fault selection first: a poison job under a real-signal
    // kind must take the genuine fault in its child, not the
    // simulated in-parent kill (killsAttempt is also true for it).
    const InducedFault induced = chaos.inducedFault(id, attempt);
    if (induced == InducedFault::None &&
        chaos.killsAttempt(id, attempt)) {
        strike_reason = "injected worker kill (attempt died before "
                        "producing a result)";
    } else if (induced == InducedFault::None &&
               chaos.hangsAttempt(id, attempt)) {
        strike_reason = "forward-progress deadline expired (worker "
                        "hang reaped by per-job watchdog)";
    } else if (cfg.isolation == Isolation::Process) {
        process_attempt = true;
        pout = supervisor.runAttempt(item, id, attempt, induced,
                                     cfg.processLimits,
                                     cfg.sliceCycles,
                                     cfg.deadlineCycles);
        switch (pout.cls) {
        case ExitClass::CleanExit:
            executed = true;
            have_row = true;
            row_json = pout.rowJson;
            row_failure = pout.rowFailure;
            break;
        case ExitClass::CleanStrike:
            // The item ran in the child but struck out there (e.g.
            // its forward-progress deadline) — same ladder as the
            // thread path's Timeout.
            executed = true;
            strike_reason = pout.reason;
            break;
        default:
            // The child died (signal, rlimit, wedge, protocol
            // tear): one strike, retried with backoff. A dead
            // attempt journaled nothing, so the aggregate cannot
            // see it.
            strike_reason = std::string("worker child ") +
                            exitClassName(pout.cls) + ": " +
                            pout.reason;
            break;
        }
    } else {
        executed = true;
        if (cfg.sliceCycles > 0 || cfg.deadlineCycles > 0) {
            bench::SliceBudget budget;
            budget.sliceCycles = cfg.sliceCycles;
            budget.deadlineCycles = cfg.deadlineCycles;
            budget.resumeImage = &queued.resumeImage;
            result = runItemSliced(item, budget, outcome);
        } else {
            result = runItem(item);
        }
        if (outcome == bench::SliceOutcome::Timeout)
            strike_reason = "forward-progress deadline expired "
                            "(no instruction commit within budget)";
    }

    std::unique_lock<std::mutex> lock(mu);
    JobState &job = jobs[static_cast<std::size_t>(id)];
    if (executed)
        ++stats.itemRuns;
    if (process_attempt) {
        ++stats.processAttempts;
        switch (pout.cls) {
        case ExitClass::FatalSignal: ++stats.childSignals; break;
        case ExitClass::HeartbeatTimeout:
            ++stats.childTimeouts;
            break;
        case ExitClass::RlimitOom: ++stats.childOoms; break;
        case ExitClass::RlimitCpu: ++stats.childCpuKills; break;
        default: break;
        }
        job.exitClass = exitClassName(pout.cls);
        job.rawStatus = pout.rawStatus;
        job.childPid = static_cast<int>(pout.childPid);
        job.finalFrames = pout.finalFrames;
    }
    std::string err;

    if (executed && outcome == bench::SliceOutcome::Preempted) {
        // Quiescent-point checkpoint taken; continue later at the
        // back of the lane so peers get the worker first. The image
        // lives only in memory (restart = re-run, still correct).
        ++stats.preemptions;
        job.inFlight = false;
        lanes[static_cast<unsigned>(job.lane)].push_back(
            std::move(queued));
        --inFlight;
        cv.notify_all();
        return;
    }

    if (strike_reason.empty()) {
        const std::string row =
            have_row ? row_json : renderRow(item, result);
        const std::string failure =
            have_row ? row_failure : rowFailure(item, result);
        if (!journal.appendComplete(id, !failure.empty(), row,
                                    err)) {
            --inFlight;
            recordCrash(err);
            return;
        }
        job.completed = true;
        job.failed = !failure.empty();
        job.rowJson = row;
        job.reason = failure;
        job.inFlight = false;
        ++stats.completed;
        const std::uint64_t restart_after =
            chaos.restartAfterCompletions();
        if (restart_after > 0 && stats.completed >= restart_after) {
            --inFlight;
            recordCrash("injected service restart after " +
                        std::to_string(stats.completed) +
                        " completions");
            return;
        }
        --inFlight;
        cv.notify_all();
        return;
    }

    // ---- strike: retry with backoff, or quarantine ----
    if (!journal.appendRetry(id, attempt, strike_reason, err)) {
        --inFlight;
        recordCrash(err);
        return;
    }
    job.reason = strike_reason;
    job.inFlight = false;
    if (attempt >= cfg.maxAttempts) {
        if (!journal.appendQuarantine(id, attempt, strike_reason,
                                      err)) {
            --inFlight;
            recordCrash(err);
            return;
        }
        job.quarantined = true;
        ++stats.quarantined;
        const JobState snapshot = job;
        --inFlight;
        cv.notify_all();
        lock.unlock();
        writeQuarantineBundle(id, snapshot);
        return;
    }
    ++stats.retries;
    lock.unlock();

    // Exponential backoff with deterministic jitter: pure wall-clock
    // pacing, invisible in the results.
    std::uint64_t ms = cfg.backoffBaseMs;
    for (unsigned i = 1; i < attempt && ms < cfg.backoffMaxMs; ++i)
        ms *= 2;
    ms = std::min<std::uint64_t>(ms, cfg.backoffMaxMs);
    Rng jitter(cfg.chaos.seed ^ (id * 0x9e3779b97f4a7c15ull) ^
               attempt);
    ms += jitter.below(ms / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));

    lock.lock();
    queued.resumeImage.clear();
    lanes[static_cast<unsigned>(job.lane)].push_back(
        std::move(queued));
    --inFlight;
    cv.notify_all();
}

bool
SweepService::drain()
{
    if (crashedFlag.load())
        return false;
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = false;
    }
    std::vector<std::thread> pool;
    const unsigned n = std::max(1u, cfg.workers);
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        pool.emplace_back([this] { workerLoop(); });
    for (std::thread &t : pool)
        t.join();
    return !crashedFlag.load() && allTerminal();
}

std::vector<std::string>
SweepService::completedRows() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> rows;
    rows.reserve(jobs.size());
    for (const JobState &job : jobs)
        if (job.completed)
            rows.push_back(job.rowJson);
    return rows;
}

std::string
SweepService::resultsDocument() const
{
    return renderResultsDoc(cfg.grid, cfg.scale, completedRows());
}

unsigned
SweepService::failedJobs() const
{
    std::lock_guard<std::mutex> lock(mu);
    unsigned n = 0;
    for (const JobState &job : jobs)
        n += job.completed && job.failed;
    return n;
}

std::string
SweepService::statusJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::size_t pending = 0, completed = 0, quarantined = 0,
                shed_jobs = 0, failed_rows = 0;
    for (const JobState &job : jobs) {
        if (job.completed) {
            ++completed;
            failed_rows += job.failed;
        } else if (job.quarantined) {
            ++quarantined;
        } else if (job.shed) {
            ++shed_jobs;
        } else {
            ++pending;
        }
    }
    JsonWriter w;
    w.beginObject();
    w.member("schema", "svc-service-status-v1");
    w.member("grid", spec.grid);
    w.key("scale");
    w.value(spec.scale);
    w.key("items");
    w.value(spec.itemCount);
    w.key("pending");
    w.value(static_cast<std::uint64_t>(pending));
    w.key("completed");
    w.value(static_cast<std::uint64_t>(completed));
    w.key("failed_rows");
    w.value(static_cast<std::uint64_t>(failed_rows));
    w.key("quarantined");
    w.value(static_cast<std::uint64_t>(quarantined));
    w.key("shed");
    w.value(static_cast<std::uint64_t>(shed_jobs));
    w.member("degraded", degradedFlag.load());
    w.member("crashed", crashedFlag.load());
    w.member("crash_reason", crashMsg);
    w.member("journal_diagnostic", tornDiag);
    w.member("isolation", isolationName(cfg.isolation));
    w.key("lane_depths");
    w.beginObject();
    for (unsigned i = 0; i < kNumLanes; ++i) {
        w.key(laneName(static_cast<Lane>(i)));
        w.value(static_cast<std::uint64_t>(lanes[i].size()));
    }
    w.endObject();
    w.key("in_flight");
    w.value(static_cast<std::uint64_t>(inFlight));
    w.key("worker_pids");
    w.beginArray();
    for (pid_t pid : supervisor.livePids())
        w.value(static_cast<std::int64_t>(pid));
    w.endArray();
    w.key("counters");
    w.beginObject();
    w.key("submitted");
    w.value(stats.submitted);
    w.key("restored");
    w.value(stats.restored);
    w.key("requeued");
    w.value(stats.requeued);
    w.key("started");
    w.value(stats.started);
    w.key("item_runs");
    w.value(stats.itemRuns);
    w.key("completed");
    w.value(stats.completed);
    w.key("retries");
    w.value(stats.retries);
    w.key("preemptions");
    w.value(stats.preemptions);
    w.key("quarantined");
    w.value(stats.quarantined);
    w.key("shed");
    w.value(stats.shed);
    w.key("rejected");
    w.value(stats.rejected);
    w.key("process_attempts");
    w.value(stats.processAttempts);
    w.key("child_signals");
    w.value(stats.childSignals);
    w.key("child_timeouts");
    w.value(stats.childTimeouts);
    w.key("child_ooms");
    w.value(stats.childOoms);
    w.key("child_cpu_kills");
    w.value(stats.childCpuKills);
    w.endObject();
    w.endObject();
    return w.str();
}

void
SweepService::writeQuarantineBundle(std::uint64_t job_id,
                                    const JobState &job)
{
    if (cfg.quarantinePrefix.empty())
        return;
    const SweepItem &item = items[static_cast<std::size_t>(job_id)];
    const std::string path = cfg.quarantinePrefix +
                             "-quarantine-job" +
                             std::to_string(job_id) + ".json";
    JsonWriter w;
    w.beginObject();
    w.member("schema", "svc-quarantine-v1");
    w.key("job_id");
    w.value(job_id);
    w.member("item_id", job.itemId);
    w.member("grid", spec.grid);
    w.key("scale");
    w.value(spec.scale);
    w.key("attempts");
    w.value(static_cast<std::uint64_t>(job.attempts));
    w.member("reason", job.reason);
    w.member("lane", laneName(job.lane));
    w.member("isolation", isolationName(cfg.isolation));
    if (!job.exitClass.empty()) {
        // Process-isolation exit diagnostics: how the last child
        // attempt actually died, straight from waitpid(2), plus
        // the final frames it managed to stream before dying.
        w.member("exit_class", job.exitClass);
        w.key("raw_status");
        w.value(static_cast<std::int64_t>(job.rawStatus));
        w.key("child_pid");
        w.value(static_cast<std::int64_t>(job.childPid));
        w.key("final_frames");
        w.beginArray();
        for (const std::string &frame : job.finalFrames)
            w.value(frame);
        w.endArray();
    }
    // Repro command lines: re-run the cell in isolation.
    {
        std::string repro = "sweep_runner --grid " + spec.grid +
                            " --scale " + std::to_string(spec.scale);
        if (item.kind == SweepItem::Bench ||
            item.kind == SweepItem::Recovery)
            repro += " --workload " + item.workload;
        w.member("repro_sweep", repro);
    }
    if (item.kind == SweepItem::Fault) {
        // fault_minimizer shrinks a failing corruption schedule to
        // a minimal repro (PR 3 tooling).
        w.member("repro_minimizer",
                 "fault_minimizer --seed " +
                     std::to_string(item.seed * 7919 + 1) +
                     " --design final --corrupt " +
                     std::string(faultKindName(item.faultKind)) +
                     "@1");
    }
    w.endObject();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write quarantine bundle '%s'", path.c_str());
        return;
    }
    const std::string &doc = w.str();
    fwriteAll(f, doc.data(), doc.size());
    std::fputc('\n', f);
    std::fclose(f);
    inform("quarantined job %llu (%s): bundle written to %s",
           static_cast<unsigned long long>(job_id),
           job.itemId.c_str(), path.c_str());
}

bool
SweepService::compact(std::string &error)
{
    std::lock_guard<std::mutex> lock(mu);
    journal.close();
    if (!compactJobJournal(cfg.journalPath, spec, jobs, error))
        return false;
    if (!journal.open(cfg.journalPath, error))
        return false;
    journal.setWriteHook(chaos.journalHook());
    return true;
}

} // namespace svc::service
