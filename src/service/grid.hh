/**
 * @file
 * The sweep grid library: one implementation of grid expansion,
 * item execution, row rendering and ordered aggregation, shared by
 * the batch CLI (tools/sweep_runner) and the long-lived job service
 * (src/service/service.hh + tools/sweep_service).
 *
 * Every grid item is a pure function of its description: each run
 * constructs its own MainMemory/SpecMem/Processor (or functional
 * protocol) and draws from its own seeded RNG stream, so items can
 * run in any order, on any thread, any number of times — the
 * property the service's crash-recovery story rests on (a retried
 * or replayed job reproduces its row byte for byte).
 *
 * Rows are rendered as compact single-line JSON objects so they can
 * be journaled verbatim and later spliced into an aggregate
 * document (JsonWriter::rawValue) without re-parsing; aggregation
 * walks items in definition order, which together with the JSON
 * writer's fixed number formatting makes the results document
 * byte-identical regardless of worker count, retry schedule, or
 * crash/restart history.
 */

#ifndef SVC_SERVICE_GRID_HH
#define SVC_SERVICE_GRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "litmus/engine.hh"
#include "mem/fault_injector.hh"
#include "recovery/recovery_manager.hh"
#include "trace_io/stimulus_cli.hh"

namespace svc::service
{

/** One self-contained unit of work. */
struct SweepItem
{
    enum Kind { Bench, Fault, Recovery, Litmus };

    std::string id; ///< stable unique name, e.g. "fig19/gcc/svc8k"
    Kind kind = Bench;

    // Bench items (kernel, gen:<pattern> or trace replay).
    std::string memKind;   ///< makeSpecMem registry key
    std::string workload;  ///< workload name or "gen:<pattern>"
    std::string tracePath; ///< SVCTRC1 path ("" = use workload)
    std::string config;    ///< short config label for the report
    unsigned scale = 1;
    std::uint64_t seed = 12345;
    SpecMemConfig cfg;
    /**
     * Simulation-kernel pin for program runs: "" follows the
     * process default (SVC_KERNEL), "ticked"/"event" force one
     * kernel. Never rendered into the row — both kernels produce
     * byte-identical rows, which the bench's kernel-throughput
     * phase asserts.
     */
    std::string kernel;

    // Fault cells (functional protocol + one corruption).
    FaultKind faultKind = FaultKind::CorruptVolPointer;

    // Recovery cells (full multiscalar run + staged recovery).
    RecoveryPolicy policy = RecoveryPolicy::Degrade;
    unsigned corruptions = 1;

    // Litmus campaigns (workload holds the shape name).
    litmus::Backend litmusBackend = litmus::Backend::Svc;
    SvcDesign litmusDesign = SvcDesign::Final;
    bool litmusFaults = false; ///< fault mix + recovery when true
    std::uint64_t litmusIters = 200;
};

/** Result of running one item. */
struct ItemResult
{
    bench::BenchRow row; ///< bench items only
    bool injected = false;
    bool detected = false;
    unsigned findings = 0;
    double wallSeconds = 0.0;

    // Recovery cells: outcome of the recovered run vs its own
    // fault-free reference.
    Counter injectedCount = 0;
    Counter episodes = 0;
    Counter repairs = 0;
    Counter replays = 0;
    Counter rollbacks = 0;
    bool degraded = false;
    unsigned highestStage = 0;
    bool recovered = false; ///< verified + engine clean + halted
    double ipc = 0.0;
    double refIpc = 0.0;

    // Litmus campaigns: the engine's full report.
    litmus::ShapeReport litmus;
};

/** @return true if @p grid names a known grid. */
bool isKnownGrid(const std::string &grid);

/** The known grid names, for usage messages. */
std::string knownGridNames();

/**
 * Expand @p grid (fig19, fig20, faults, recovery, smoke, litmus,
 * full, trace) into its item list. Applies the --workload /--seed
 * narrowing rules from @p stim. fatal()s on an unknown grid or an
 * empty narrowing — call isKnownGrid() first for a non-fatal check.
 */
std::vector<SweepItem>
buildGrid(const std::string &grid, unsigned scale,
          const trace_io::StimulusOptions &stim);

/** Run one item to completion (any kind). */
ItemResult runItem(const SweepItem &it);

/**
 * Run one item under a slice/deadline budget (the service's
 * preemptible path). Only Bench items backed by a program stimulus
 * can actually be preempted or time out; every other kind runs to
 * completion with outcome Completed.
 */
ItemResult runItemSliced(const SweepItem &it,
                         const bench::SliceBudget &budget,
                         bench::SliceOutcome &outcome);

/**
 * Render one result row as a compact single-line JSON object (the
 * journaled/aggregated form). Deterministic: a function of the item
 * and result values alone.
 */
std::string renderRow(const SweepItem &it, const ItemResult &r);

/**
 * @return a structured failure description for @p r ("" if the row
 * is healthy): failed checksum verification, undetected corruption,
 * unrecovered fault, or a forbidden litmus outcome.
 */
std::string rowFailure(const SweepItem &it, const ItemResult &r);

/**
 * Compose the deterministic results document ("svc-sweep-v1"):
 * schema/grid/scale/items plus the rows (pre-rendered with
 * renderRow) spliced in definition order.
 */
std::string renderResultsDoc(const std::string &grid, unsigned scale,
                             const std::vector<std::string> &rows);

/**
 * Order-sensitive FNV-1a fingerprint of a grid expansion (folds
 * each item id in definition order): the journal records it so a
 * resumed campaign can prove it is re-expanding the same grid the
 * journal was written against.
 */
std::uint64_t gridFingerprint(const std::vector<SweepItem> &items);

} // namespace svc::service

#endif // SVC_SERVICE_GRID_HH
