/**
 * @file
 * Deterministic seeded chaos for the sweep service. Every fault
 * decision is a pure function of (kind, seed, jobId, attempt) — two
 * runs with the same chaos config inject the identical fault
 * schedule, so the chaos matrix is reproducible and a failing cell
 * can be replayed from its (kind, seed) pair alone.
 *
 * Fault kinds and their determinism story:
 *
 *   WorkerKill   a selected subset of jobs dies on attempt 1 (the
 *                worker "crashes" before producing a row). Retries
 *                run clean, so the final aggregate is byte-identical
 *                to the fault-free run.
 *   WorkerHang   same selection, but the attempt "hangs" and is
 *                reaped by the per-job forward-progress deadline.
 *   JournalStall appends to the journal stall for a few
 *                milliseconds (a slow device); nothing is corrupted
 *                and no retry happens — pure latency.
 *   TornWrite    one append persists only a prefix of its record (a
 *                crash mid-write). The writer reports failure, the
 *                service treats itself as crashed, and the restart
 *                replays the journal, which reports the torn tail
 *                as a structured diagnostic and re-runs the torn
 *                job. A tear is a crash event, not a persistent
 *                fault: the front-end drops TornWrite chaos for the
 *                restarted incarnation (each injector would
 *                otherwise tear its k-th append again, and an
 *                unlucky interleaving could stall convergence).
 *   Restart      the whole service "crashes" after a seeded number
 *                of completions; the front-end restarts it and it
 *                resumes from the journal.
 *
 * Real-signal kinds (process-isolation backend only — with thread
 * workers these would kill or wedge the daemon itself, so the
 * service refuses them under --isolation=thread with a structured
 * error):
 *
 *   SigKill      the selected attempt's child raises SIGKILL — an
 *                abrupt worker death with no cleanup, classified by
 *                the supervisor via waitpid.
 *   SigSegv      the child takes a genuine segmentation fault (a
 *                wild store through an induced bad pointer) — the
 *                poison-job-that-crashes scenario class.
 *   SigStop      the child raises SIGSTOP: every thread (including
 *                the heartbeat thread) freezes, the supervisor's
 *                heartbeat deadline expires, and the wedged child
 *                is SIGKILLed and reaped.
 *   OomKill      the child clamps its own RLIMIT_AS and maps memory
 *                until the kernel refuses — a real address-space
 *                OOM, classified from the child's OOM exit code.
 *
 * Like the simulated kinds, only attempt 1 of the seeded selection
 * is faulted, so retries run clean and the final aggregate is
 * byte-identical to the fault-free run.
 *
 * A poison job (ChaosConfig::poisonJobId) dies on *every* attempt —
 * the quarantine path's test vector. Under a real-signal kind the
 * poison job takes the *real* fault every attempt (a genuinely
 * segfaulting/OOMing/wedging job), driving the quarantine ladder
 * through the process supervisor.
 */

#ifndef SVC_SERVICE_CHAOS_HH
#define SVC_SERVICE_CHAOS_HH

#include <cstdint>
#include <string>

#include "common/journal.hh"

namespace svc::service
{

enum class ServiceFault
{
    None,
    WorkerKill,
    WorkerHang,
    JournalStall,
    TornWrite,
    Restart,
    SigKill,
    SigSegv,
    SigStop,
    OomKill,
};

const char *serviceFaultName(ServiceFault kind);

/** @return the fault kind named @p name ("none", "worker-kill",
 *  "worker-hang", "journal-stall", "torn-write", "restart",
 *  "sig-kill", "sig-segv", "sig-stop", "oom"), or None with
 *  @p ok = false if unknown. */
ServiceFault serviceFaultFromName(const std::string &name, bool &ok);

/** @return true for the kinds that inject a *real* process fault
 *  and therefore require the process-isolation backend. */
bool isRealSignalFault(ServiceFault kind);

/**
 * A real fault a worker child induces in itself (the physical form
 * of the real-signal ServiceFault kinds; SpinCpu is the RLIMIT_CPU
 * test vector — a wedged infinite loop only the cpu rlimit stops).
 */
enum class InducedFault
{
    None,
    SigKill,
    SigSegv,
    SigStop,
    Oom,
    SpinCpu,
};

const char *inducedFaultName(InducedFault fault);

inline constexpr std::uint64_t kNoPoisonJob = ~0ull;

struct ChaosConfig
{
    ServiceFault kind = ServiceFault::None;
    std::uint64_t seed = 1;
    /** This job fails every attempt (drives quarantine). */
    std::uint64_t poisonJobId = kNoPoisonJob;
};

class ServiceFaultInjector
{
  public:
    explicit ServiceFaultInjector(const ChaosConfig &cfg)
        : cfg(cfg)
    {}

    const ChaosConfig &config() const { return cfg; }

    /** Should this attempt die before producing a result? (The
     *  WorkerKill schedule, plus every poison-job attempt.) */
    bool killsAttempt(std::uint64_t job_id, unsigned attempt) const;

    /** Should this attempt hang (reaped as a deadline timeout)? */
    bool hangsAttempt(std::uint64_t job_id, unsigned attempt) const;

    /**
     * The real fault this attempt's worker child must induce in
     * itself (None for the simulated kinds, or when this attempt is
     * not selected). Poison jobs take the configured real fault on
     * every attempt; the seeded selection only on attempt 1, so
     * retries converge. Only meaningful under the process backend —
     * the service refuses real-signal kinds with thread workers.
     */
    InducedFault inducedFault(std::uint64_t job_id,
                              unsigned attempt) const;

    /**
     * Journal write hook implementing TornWrite (truncates the k-th
     * append, k seeded) and JournalStall (stalls a seeded subset of
     * appends). Stateful across appends; install once per journal
     * lifetime.
     */
    JournalWriteHook journalHook();

    /** Completions before an injected whole-service crash
     *  (Restart kind); 0 = never. */
    std::uint64_t restartAfterCompletions() const;

  private:
    bool selected(std::uint64_t job_id) const;

    ChaosConfig cfg;
    std::uint64_t appendsSeen = 0;
    bool tearFired = false;
};

} // namespace svc::service

#endif // SVC_SERVICE_CHAOS_HH
