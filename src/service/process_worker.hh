/**
 * @file
 * Process-isolated attempt execution for the sweep service: each
 * job attempt forks a child that runs the grid item and streams its
 * result back over a pipe (service/ipc.hh), while the parent-side
 * supervisor enforces rlimits and a heartbeat deadline and
 * classifies every possible exit via waitpid(2).
 *
 * Why a process, not a thread: a thread that segfaults, wedges
 * under SIGSTOP, or exhausts address space takes the whole daemon
 * with it. A forked child contains the blast radius — the kernel
 * delivers the truth about how it died (WIFSIGNALED/WIFEXITED), the
 * supervisor maps that onto the service's strike → retry →
 * quarantine ladder, and the campaign completes with aggregates
 * byte-identical to the fault-free serial reference no matter the
 * crash history (attempts are pure; a dead attempt journals
 * nothing).
 *
 * Lifecycle of one attempt:
 *
 *   parent                         child
 *   ------                         -----
 *   pipe(); fork()  ───────────▶   close read end, close every
 *   close write end                other registered pipe fd,
 *   register child                 apply rlimits, HELO frame,
 *                                  start heartbeat thread
 *   poll read end ◀── HBEA ──────  beat every heartbeatMillis
 *   refresh deadline               run the item (sliced loop if a
 *                 ◀── ROWR/STRK ─  budget is set), then _exit(0)
 *   waitpid(WNOHANG) each tick;
 *   on silence past the deadline: SIGKILL; classify the status
 *
 * The child NEVER returns into the caller's stack: every path ends
 * in _exit (no atexit handlers, no double stdio flush, no gtest
 * teardown in the child).
 *
 * Exit classification (ProcessOutcome::cls):
 *
 *   CleanExit         _exit(0) with an intact ROWR frame
 *   CleanStrike       _exit(0) with a STRK frame (the attempt ran
 *                     but struck out in-child, e.g. its
 *                     forward-progress deadline expired)
 *   NonzeroExit       _exit(k), k != 0 and k != the OOM code
 *   FatalSignal       killed by a signal (SIGSEGV, SIGKILL, ...)
 *   RlimitCpu         killed by SIGXCPU (RLIMIT_CPU exceeded)
 *   RlimitOom         _exit(kChildExitOom): address-space
 *                     exhaustion under RLIMIT_AS (raised by the
 *                     child's mmap probe or its new-handler)
 *   HeartbeatTimeout  no frame within heartbeatTimeoutMillis; the
 *                     supervisor SIGKILLed and reaped the child
 *   ProtocolError     exited 0 but produced no result frame, or
 *                     the frame stream was torn with no intact row
 *   ForkFailed        fork(2)/pipe(2) itself failed (resource
 *                     exhaustion in the parent)
 *
 * Concurrency caveat baked into the design: with several attempts
 * in flight, a fork can duplicate the write ends of sibling pipes
 * (no exec, so CLOEXEC does not help). The supervisor therefore
 * serializes forks under a mutex and has each child close every
 * *other* registered pipe fd first thing — and classification never
 * trusts pipe EOF anyway; waitpid is the source of truth.
 */

#ifndef SVC_SERVICE_PROCESS_WORKER_HH
#define SVC_SERVICE_PROCESS_WORKER_HH

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/chaos.hh"
#include "service/grid.hh"

namespace svc::service
{

/** Deterministic child exit code for address-space OOM (chosen to
 *  collide with nothing the toolchain or gtest uses). */
inline constexpr int kChildExitOom = 86;

/** Parent-side resource policy for one attempt's child. */
struct ProcessLimits
{
    /** RLIMIT_CPU soft limit in seconds (0 = unlimited). A wedged
     *  spin loop keeps heartbeating, so only this catches it. */
    unsigned cpuSeconds = 0;
    /** RLIMIT_AS in bytes (0 = unlimited). */
    std::uint64_t addressSpaceBytes = 0;
    /** Child heartbeat period. */
    unsigned heartbeatMillis = 25;
    /** Supervisor gives up after this long with no frame from the
     *  child (generous vs heartbeatMillis: a loaded CI box must not
     *  produce false positives — and a false timeout only costs a
     *  retry, never result bytes). */
    unsigned heartbeatTimeoutMillis = 1000;
};

enum class ExitClass
{
    CleanExit,
    CleanStrike,
    NonzeroExit,
    FatalSignal,
    RlimitCpu,
    RlimitOom,
    HeartbeatTimeout,
    ProtocolError,
    ForkFailed,
};

const char *exitClassName(ExitClass cls);

/** Everything the supervisor learned about one child attempt. */
struct ProcessOutcome
{
    ExitClass cls = ExitClass::ProtocolError;
    /** Intact ROWR frame decoded. */
    bool hasRow = false;
    bool rowFailed = false;
    std::string rowJson;
    /** Structured row-failure description ("" if healthy). */
    std::string rowFailure;
    /** STRK reason (CleanStrike) or classification diagnostic. */
    std::string reason;
    /** Raw waitpid status (-1 if never reaped). */
    int rawStatus = -1;
    pid_t childPid = -1;
    /** Heartbeats received (diagnostic only — never byte-visible). */
    std::uint64_t heartbeats = 0;
    /** Human-readable trail of the child's final frames, newest
     *  last — captured into quarantine bundles. */
    std::vector<std::string> finalFrames;
    /** Frame-stream tear diagnostic ("" if the stream was clean). */
    std::string streamError;
};

/**
 * Owns the fork discipline shared by all process workers of one
 * service: serializes fork(2), tracks each live child's pipe fd so
 * new children can close the fds they inherited from siblings, and
 * exposes the live pid set for status reporting.
 */
class WorkerSupervisor
{
  public:
    /** Pids of children currently in flight (status reporting). */
    std::vector<pid_t> livePids() const;

    /**
     * Fork-and-supervise one attempt of @p item. @p induced is the
     * real fault the child inflicts on itself (chaos), or None to
     * run the item; @p budget mirrors the thread path's slice /
     * deadline config (the child loops slices internally — a run
     * sliced N times renders byte-identical rows to an unsliced
     * one). Blocks until the child is reaped and classified.
     */
    ProcessOutcome runAttempt(const SweepItem &item,
                              std::uint64_t jobId, unsigned attempt,
                              InducedFault induced,
                              const ProcessLimits &limits,
                              Cycle sliceCycles, Cycle deadlineCycles);

  private:
    mutable std::mutex mu;
    /** live child pid → parent's read-end fd of that child's pipe */
    std::map<pid_t, int> children;
};

} // namespace svc::service

#endif // SVC_SERVICE_PROCESS_WORKER_HH
