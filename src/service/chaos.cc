#include "service/chaos.hh"

namespace svc::service
{
namespace
{

/** splitmix64 finalizer: a cheap, well-mixed pure hash. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

const char *
serviceFaultName(ServiceFault kind)
{
    switch (kind) {
    case ServiceFault::None: return "none";
    case ServiceFault::WorkerKill: return "worker-kill";
    case ServiceFault::WorkerHang: return "worker-hang";
    case ServiceFault::JournalStall: return "journal-stall";
    case ServiceFault::TornWrite: return "torn-write";
    case ServiceFault::Restart: return "restart";
    case ServiceFault::SigKill: return "sig-kill";
    case ServiceFault::SigSegv: return "sig-segv";
    case ServiceFault::SigStop: return "sig-stop";
    case ServiceFault::OomKill: return "oom";
    }
    return "?";
}

bool
isRealSignalFault(ServiceFault kind)
{
    switch (kind) {
    case ServiceFault::SigKill:
    case ServiceFault::SigSegv:
    case ServiceFault::SigStop:
    case ServiceFault::OomKill:
        return true;
    default:
        return false;
    }
}

const char *
inducedFaultName(InducedFault fault)
{
    switch (fault) {
    case InducedFault::None: return "none";
    case InducedFault::SigKill: return "sig-kill";
    case InducedFault::SigSegv: return "sig-segv";
    case InducedFault::SigStop: return "sig-stop";
    case InducedFault::Oom: return "oom";
    case InducedFault::SpinCpu: return "spin-cpu";
    }
    return "?";
}

ServiceFault
serviceFaultFromName(const std::string &name, bool &ok)
{
    ok = true;
    if (name == "none")
        return ServiceFault::None;
    if (name == "worker-kill")
        return ServiceFault::WorkerKill;
    if (name == "worker-hang")
        return ServiceFault::WorkerHang;
    if (name == "journal-stall")
        return ServiceFault::JournalStall;
    if (name == "torn-write")
        return ServiceFault::TornWrite;
    if (name == "restart")
        return ServiceFault::Restart;
    if (name == "sig-kill")
        return ServiceFault::SigKill;
    if (name == "sig-segv")
        return ServiceFault::SigSegv;
    if (name == "sig-stop")
        return ServiceFault::SigStop;
    if (name == "oom")
        return ServiceFault::OomKill;
    ok = false;
    return ServiceFault::None;
}

bool
ServiceFaultInjector::selected(std::uint64_t job_id) const
{
    // Roughly one job in three, seed-scheduled.
    return mix(cfg.seed * 0x2545f4914f6cdd1dull + job_id) % 3 == 0;
}

bool
ServiceFaultInjector::killsAttempt(std::uint64_t job_id,
                                   unsigned attempt) const
{
    if (job_id == cfg.poisonJobId)
        return true; // every attempt: the quarantine driver
    // Only attempt 1 dies, so the bounded retry always converges
    // and the final aggregate matches the fault-free run.
    return cfg.kind == ServiceFault::WorkerKill && attempt == 1 &&
           selected(job_id);
}

bool
ServiceFaultInjector::hangsAttempt(std::uint64_t job_id,
                                   unsigned attempt) const
{
    return cfg.kind == ServiceFault::WorkerHang && attempt == 1 &&
           selected(job_id);
}

InducedFault
ServiceFaultInjector::inducedFault(std::uint64_t job_id,
                                   unsigned attempt) const
{
    if (!isRealSignalFault(cfg.kind))
        return InducedFault::None;
    // The poison job takes the real fault on every attempt (a job
    // that genuinely crashes no matter what → quarantine); the
    // seeded selection only on attempt 1, so retries run clean and
    // the aggregate converges to the fault-free bytes.
    if (job_id != cfg.poisonJobId &&
        !(attempt == 1 && selected(job_id)))
        return InducedFault::None;
    switch (cfg.kind) {
    case ServiceFault::SigKill: return InducedFault::SigKill;
    case ServiceFault::SigSegv: return InducedFault::SigSegv;
    case ServiceFault::SigStop: return InducedFault::SigStop;
    case ServiceFault::OomKill: return InducedFault::Oom;
    default: return InducedFault::None;
    }
}

JournalWriteHook
ServiceFaultInjector::journalHook()
{
    if (cfg.kind == ServiceFault::TornWrite) {
        // Tear exactly one append: the k-th (seeded), persisted
        // only up to half its bytes — a crash mid-write.
        const std::uint64_t tear_at = 3 + cfg.seed % 5;
        return [this, tear_at](std::size_t record_bytes,
                               std::size_t &write_bytes,
                               unsigned &stall_millis) {
            (void)stall_millis;
            ++appendsSeen;
            if (!tearFired && appendsSeen == tear_at) {
                tearFired = true;
                write_bytes = record_bytes / 2;
            }
        };
    }
    if (cfg.kind == ServiceFault::JournalStall) {
        const std::uint64_t seed = cfg.seed;
        return [this, seed](std::size_t, std::size_t &,
                            unsigned &stall_millis) {
            ++appendsSeen;
            if (mix(seed ^ appendsSeen) % 4 == 0)
                stall_millis = 5;
        };
    }
    return nullptr;
}

std::uint64_t
ServiceFaultInjector::restartAfterCompletions() const
{
    if (cfg.kind != ServiceFault::Restart)
        return 0;
    return 1 + cfg.seed % 4;
}

} // namespace svc::service
