#include "common/trace.hh"

#include <cstdio>
#include <fstream>

#include "common/log.hh"

namespace svc
{

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Bus:
        return "bus";
      case TraceCat::Vcl:
        return "vcl";
      case TraceCat::Line:
        return "line";
      case TraceCat::Mshr:
        return "mshr";
      case TraceCat::Task:
        return "task";
    }
    return "?";
}

namespace
{

/** Shared one-line text rendering (TextTraceSink + RingTraceSink). */
std::string
formatTraceLine(const TraceEvent &ev)
{
    char buf[256];
    char pu_buf[16] = "-";
    if (ev.pu != kNoPu)
        std::snprintf(pu_buf, sizeof(pu_buf), "%u", ev.pu);
    char addr_buf[24] = "-";
    if (ev.addr != kNoAddr) {
        std::snprintf(addr_buf, sizeof(addr_buf), "0x%llx",
                      static_cast<unsigned long long>(ev.addr));
    }
    std::snprintf(buf, sizeof(buf),
                  "%10llu  %-4s %-16s pu=%-3s addr=%-10s dur=%-4llu "
                  "arg=%llu%s%s\n",
                  static_cast<unsigned long long>(ev.cycle),
                  traceCatName(ev.cat), ev.name, pu_buf, addr_buf,
                  static_cast<unsigned long long>(ev.dur),
                  static_cast<unsigned long long>(ev.arg),
                  ev.detail ? " detail=" : "",
                  ev.detail ? ev.detail : "");
    return buf;
}

} // namespace

void
TextTraceSink::emit(const TraceEvent &ev)
{
    out << formatTraceLine(ev);
}

void
TextTraceSink::flush()
{
    out.flush();
}

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : out(os)
{
    out << "[\n";
}

ChromeTraceSink::~ChromeTraceSink()
{
    flush();
}

void
ChromeTraceSink::emit(const TraceEvent &ev)
{
    if (closed)
        return;
    if (!first)
        out << ",\n";
    first = false;

    // One swim-lane per PU; events with no PU (e.g. write-back
    // drains) land on a dedicated lane.
    const unsigned tid = ev.pu == kNoPu ? 99 : ev.pu;
    char buf[384];
    char addr_buf[24] = "-";
    if (ev.addr != kNoAddr) {
        std::snprintf(addr_buf, sizeof(addr_buf), "0x%llx",
                      static_cast<unsigned long long>(ev.addr));
    }
    if (ev.dur > 0) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":0,\"tid\":%u,"
            "\"args\":{\"addr\":\"%s\",\"arg\":%llu,"
            "\"detail\":\"%s\"}}",
            ev.name, traceCatName(ev.cat),
            static_cast<unsigned long long>(ev.cycle),
            static_cast<unsigned long long>(ev.dur), tid, addr_buf,
            static_cast<unsigned long long>(ev.arg),
            ev.detail ? ev.detail : "");
    } else {
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":%llu,\"pid\":0,\"tid\":%u,"
            "\"args\":{\"addr\":\"%s\",\"arg\":%llu,"
            "\"detail\":\"%s\"}}",
            ev.name, traceCatName(ev.cat),
            static_cast<unsigned long long>(ev.cycle), tid, addr_buf,
            static_cast<unsigned long long>(ev.arg),
            ev.detail ? ev.detail : "");
    }
    out << buf;
}

void
ChromeTraceSink::flush()
{
    if (closed)
        return;
    closed = true;
    out << "\n]\n";
    out.flush();
}

RingTraceSink::RingTraceSink(std::size_t capacity)
    : lines(capacity == 0 ? 1 : capacity)
{}

void
RingTraceSink::emit(const TraceEvent &ev)
{
    lines[head] = formatTraceLine(ev);
    head = (head + 1) % lines.size();
    ++total;
}

std::string
RingTraceSink::dump() const
{
    char hdr[96];
    const std::uint64_t kept =
        total < lines.size() ? total
                             : static_cast<std::uint64_t>(lines.size());
    std::snprintf(hdr, sizeof(hdr),
                  "--- trace ring: last %llu of %llu events ---\n",
                  static_cast<unsigned long long>(kept),
                  static_cast<unsigned long long>(total));
    std::string out = hdr;
    // Oldest retained line first: when the ring has wrapped, that
    // is the slot `head` points at.
    const std::size_t start = total < lines.size() ? 0 : head;
    for (std::uint64_t i = 0; i < kept; ++i)
        out += lines[(start + i) % lines.size()];
    return out;
}

struct FileTraceSink::Impl
{
    std::ofstream file;
    std::unique_ptr<TraceSink> sink;
};

FileTraceSink::FileTraceSink(const std::string &path)
    : impl(std::make_unique<Impl>())
{
    impl->file.open(path);
    if (!impl->file)
        fatal("trace: cannot open '%s' for writing", path.c_str());
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    if (json)
        impl->sink = std::make_unique<ChromeTraceSink>(impl->file);
    else
        impl->sink = std::make_unique<TextTraceSink>(impl->file);
}

FileTraceSink::~FileTraceSink()
{
    flush();
}

void
FileTraceSink::emit(const TraceEvent &ev)
{
    impl->sink->emit(ev);
}

void
FileTraceSink::flush()
{
    if (impl->sink)
        impl->sink->flush();
}

std::unique_ptr<TraceSink>
openTraceSink(const std::string &path)
{
    return std::make_unique<FileTraceSink>(path);
}

std::unique_ptr<TraceSink>
tryOpenTraceSink(const std::string &path, std::string &error)
{
    // Probe with a plain ofstream first: FileTraceSink's
    // constructor treats an unopenable path as fatal.
    {
        std::ofstream probe(path);
        if (!probe) {
            error = "cannot open '" + path + "' for writing";
            return nullptr;
        }
    }
    error.clear();
    return std::make_unique<FileTraceSink>(path);
}

} // namespace svc
