/**
 * @file
 * A minimal streaming JSON writer for machine-readable benchmark
 * output (BENCH_*.json). Two properties matter more than features:
 *
 *  - determinism: doubles are rendered with "%.17g" (shortest exact
 *    round-trip is overkill; 17 significant digits reproduce the
 *    bit pattern), so identical results serialize to identical
 *    bytes regardless of how many threads produced them;
 *
 *  - validity: JSON has no NaN/Infinity literals. Non-finite values
 *    are emitted as 0 and recorded (sawNonFinite()), so the file is
 *    always parseable and the caller can still fail the run.
 *
 * The writer is strictly streaming (no DOM): begin/end calls must
 * nest correctly, which the emitting code enforces by construction.
 */

#ifndef SVC_COMMON_JSON_HH
#define SVC_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace svc
{

class JsonWriter
{
  public:
    /** @param pretty emit newlines + two-space indentation. */
    explicit JsonWriter(bool pretty = true) : prettyPrint(pretty) {}

    // ---- Containers ----
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Start a named member inside an object (next value/container
     *  call supplies its value). */
    void key(const std::string &name);

    // ---- Values ----
    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);

    /**
     * Splice a pre-rendered JSON value verbatim (comma/indentation
     * handled like any other value). The caller guarantees @p json
     * is a complete, valid JSON value; the service layer uses this
     * to aggregate result rows that were rendered (and journaled)
     * independently without re-parsing them.
     */
    void rawValue(const std::string &json) { raw(json); }

    // ---- Shorthands ----
    void
    member(const std::string &name, const std::string &v)
    {
        key(name);
        value(v);
    }
    void
    member(const std::string &name, const char *v)
    {
        key(name);
        value(v);
    }
    void
    member(const std::string &name, double v)
    {
        key(name);
        value(v);
    }
    void
    member(const std::string &name, std::uint64_t v)
    {
        key(name);
        value(v);
    }
    void
    member(const std::string &name, bool v)
    {
        key(name);
        value(v);
    }

    /** True if any emitted double was NaN/inf (serialized as 0). */
    bool sawNonFinite() const { return nonFinite; }

    /** The document built so far (call after the final end*()). */
    const std::string &str() const { return out; }

  private:
    void separate();
    void indent();
    void raw(const std::string &s);

    std::string out;
    /** One entry per open container: item count (for commas). */
    std::vector<unsigned> depth;
    bool pendingKey = false;
    bool prettyPrint;
    bool nonFinite = false;
};

/** @return @p s with JSON string escaping applied (no quotes). */
std::string jsonEscape(const std::string &s);

} // namespace svc

#endif // SVC_COMMON_JSON_HH
