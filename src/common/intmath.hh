/**
 * @file
 * Small integer-math helpers used throughout the cache and ISA
 * models (power-of-two checks, logarithms, bit masks, alignment).
 */

#ifndef SVC_COMMON_INTMATH_HH
#define SVC_COMMON_INTMATH_HH

#include <cassert>
#include <cstdint>

namespace svc
{

/** @return true iff @p n is a (positive) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** @return floor(log2(n)); @p n must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    assert(n != 0);
    unsigned l = 0;
    while (n >>= 1)
        ++l;
    return l;
}

/** @return a mask with the low @p bits bits set. */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bits) - 1;
}

/** @return @p addr rounded down to a multiple of @p align (a power of 2). */
constexpr std::uint64_t
alignDown(std::uint64_t addr, std::uint64_t align)
{
    assert(isPowerOf2(align));
    return addr & ~(align - 1);
}

/** @return @p addr rounded up to a multiple of @p align (a power of 2). */
constexpr std::uint64_t
alignUp(std::uint64_t addr, std::uint64_t align)
{
    assert(isPowerOf2(align));
    return (addr + align - 1) & ~(align - 1);
}

/** @return ceil(a / b) for integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & mask(len);
}

/** Sign-extend the low @p from bits of @p v to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t v, unsigned from)
{
    assert(from > 0 && from <= 64);
    const std::uint64_t m = std::uint64_t{1} << (from - 1);
    v &= mask(from);
    return static_cast<std::int64_t>((v ^ m) - m);
}

} // namespace svc

#endif // SVC_COMMON_INTMATH_HH
