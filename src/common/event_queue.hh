/**
 * @file
 * A tiny cycle-ordered event queue. Timed components schedule
 * callbacks at absolute cycles; the owning system drains all events
 * due at the current cycle each tick. Deterministic: events at the
 * same cycle fire in insertion order.
 */

#ifndef SVC_COMMON_EVENT_QUEUE_HH
#define SVC_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/types.hh"

namespace svc
{

/** FIFO-per-cycle event queue. */
class EventQueue
{
  public:
    /** Schedule @p fn to run at absolute cycle @p when. */
    void
    schedule(Cycle when, std::function<void()> fn)
    {
        events[when].push_back(std::move(fn));
    }

    /** Run every event due at or before @p now, in order. */
    void
    runDue(Cycle now)
    {
        while (!events.empty() && events.begin()->first <= now) {
            // Move the bucket out so callbacks may schedule new
            // events (even for this same cycle) without iterator
            // invalidation; new same-cycle events run in this loop.
            auto it = events.begin();
            std::vector<std::function<void()>> bucket =
                std::move(it->second);
            events.erase(it);
            for (auto &fn : bucket)
                fn();
        }
    }

    bool empty() const { return events.empty(); }

    /** @return the cycle of the earliest pending event. */
    Cycle
    nextEventCycle() const
    {
        return events.empty() ? ~Cycle{0} : events.begin()->first;
    }

  private:
    std::map<Cycle, std::vector<std::function<void()>>> events;
};

} // namespace svc

#endif // SVC_COMMON_EVENT_QUEUE_HH
