/**
 * @file
 * Runtime invariant engine. The engine is a TraceSink: it subscribes
 * to the structured event stream of the observability layer, keeps
 * cheap conservation counters derived from the events (bus requests
 * vs. grants, MSHR allocations vs. retirements), and runs a set of
 * registered InvariantCheckers at configurable anchor points — after
 * every bus transaction, every N cycles, or only at end of run.
 *
 * Checkers validate the paper's global protocol properties (see
 * DESIGN.md "Paper invariants") against live component state and
 * report violations as structured findings: a short invariant id, a
 * human-readable message, and a multi-line diagnostic dump (VOL /
 * line state) — instead of undefined behavior or a bare abort().
 *
 * The engine chains to an optional downstream sink, so tracing to a
 * file and invariant checking compose.
 */

#ifndef SVC_COMMON_INVARIANTS_HH
#define SVC_COMMON_INVARIANTS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"

namespace svc
{

/**
 * Global switch for the SVC_CHECK release-mode assertions (see
 * svc/protocol.hh). Defaults to enabled; reads the SVC_CHECKS
 * environment variable once ("0" disables). Tests and benches can
 * override programmatically.
 */
bool runtimeChecksEnabled();

/** Override the SVC_CHECK switch (tests / benchmarks). */
void setRuntimeChecks(bool enabled);

/** One detected invariant violation. */
struct InvariantFinding
{
    /** Short stable identifier, e.g. "svc.vol_ptr_range". */
    std::string invariant;
    /** One-line human-readable description of the violation. */
    std::string message;
    /** Structured multi-line state dump (VOL / line state / ...). */
    std::string diagnostic;
    Cycle cycle = 0;
    PuId pu = kNoPu;
    Addr addr = kNoAddr;
};

/** Collector passed to checkers; caps the number of findings. */
class InvariantReport
{
  public:
    explicit InvariantReport(std::size_t max_findings = 64)
        : cap(max_findings)
    {}

    /** Record @p f (dropped once the cap is reached). */
    void
    flag(InvariantFinding f)
    {
        ++nFlagged;
        if (list.size() < cap)
            list.push_back(std::move(f));
        else
            ++nSuppressed;
    }

    bool clean() const { return list.empty(); }
    const std::vector<InvariantFinding> &findings() const
    {
        return list;
    }
    Counter flagged() const { return nFlagged; }
    Counter suppressed() const { return nSuppressed; }

    /**
     * Drop the retained findings (the cumulative flagged counter is
     * kept). Used by the recovery layer after it has handled — and
     * re-verified — an episode, so a recovered run ends clean().
     */
    void
    clearFindings()
    {
        list.clear();
        nSuppressed = 0;
    }

    /** Render every finding (message + diagnostic) as text. */
    std::string format() const;

  private:
    std::size_t cap;
    std::vector<InvariantFinding> list;
    Counter nFlagged = 0;
    Counter nSuppressed = 0;
};

class InvariantEngine;

/** One subsystem's invariant validator. */
class InvariantChecker
{
  public:
    virtual ~InvariantChecker() = default;

    /** Stable checker name ("svc.protocol", "svc.system", ...). */
    virtual const char *name() const = 0;

    /** Validate at an anchor point; flag violations into @p rep. */
    virtual void check(const InvariantEngine &eng,
                       InvariantReport &rep) = 0;

    /**
     * Validate at end of run. Defaults to check(); checkers whose
     * property only holds once the run has drained (e.g. memory
     * image equivalence) override this and make check() a no-op.
     */
    virtual void
    checkFinal(const InvariantEngine &eng, InvariantReport &rep)
    {
        check(eng, rep);
    }
};

/** When the engine runs its checkers. */
enum class CheckGranularity : std::uint8_t
{
    EveryBusTransaction, ///< at each bus_grant event
    EveryNCycles,        ///< at the first bus_grant >= N cycles later
    EndOfRun,            ///< only from flush()
};

/** Engine configuration. */
struct InvariantConfig
{
    CheckGranularity granularity =
        CheckGranularity::EveryBusTransaction;
    /** Check interval for EveryNCycles. */
    Cycle interval = 1000;
    /** Maximum findings retained (further ones are counted only). */
    std::size_t maxFindings = 64;
    /** panic() with the full report on the first finding — turns
     *  the engine into a hard tripwire for fuzzing and CI. */
    bool abortOnViolation = false;
};

/**
 * The invariant engine. Install it as (or chained in front of) the
 * trace sink of the system under test, register checkers, and
 * inspect findings()/clean() — or set abortOnViolation.
 */
class InvariantEngine : public TraceSink
{
  public:
    explicit InvariantEngine(InvariantConfig config = {});

    /** Forward every event to @p sink as well (nullptr: none). */
    void chain(TraceSink *sink) { downstream = sink; }

    /** Register @p checker; the engine owns it. */
    void addChecker(std::unique_ptr<InvariantChecker> checker);

    // ---- TraceSink ----
    void emit(const TraceEvent &ev) override;
    /** Runs the end-of-run checks, then flushes downstream. */
    void flush() override;

    /** Run every checker's periodic check now (anchor @p now). */
    void runChecks(Cycle now);

    /** Run every checker's end-of-run check (idempotent per call). */
    void runFinalChecks();

    /**
     * Run every checker into a scratch report without recording the
     * findings (and without invoking the violation handler or the
     * abort tripwire). The recovery layer's verification primitive:
     * "is the live state clean right now?".
     */
    InvariantReport probe(std::size_t max_findings = 64);

    /**
     * Invoke @p handler for every finding as it is recorded (after
     * the report captures it, before any abortOnViolation panic).
     * The handler must not re-enter runChecks(); defer any reaction
     * that mutates the checked components to a safe point.
     */
    void
    setViolationHandler(
        std::function<void(const InvariantFinding &)> handler)
    {
        onViolation = std::move(handler);
    }

    /**
     * Consume the retained findings: hand them to the caller and
     * clear the report so a fully recovered run ends clean().
     * @return the consumed findings.
     */
    std::vector<InvariantFinding> consumeFindings();

    // ---- Results ----
    bool clean() const { return report_.clean(); }
    const std::vector<InvariantFinding> &findings() const
    {
        return report_.findings();
    }
    std::string formatReport() const { return report_.format(); }
    Counter checksRun() const { return nChecks; }

    // ---- Event-derived conservation state (for checkers) ----

    /** bus_request events minus bus_grant events so far. */
    std::int64_t busOutstanding() const
    {
        return static_cast<std::int64_t>(nBusRequests) -
               static_cast<std::int64_t>(nBusGrants);
    }
    Counter busRequests() const { return nBusRequests; }
    Counter busGrants() const { return nBusGrants; }
    Counter busNacks() const { return nBusNacks; }

    /** mshr_alloc minus mshr_retire events for @p pu so far. */
    std::int64_t mshrOutstanding(PuId pu) const;

    /** Cycle stamp of the most recent event. */
    Cycle now() const { return lastCycle; }

    StatSet stats() const;

  private:
    void noteFindings(std::size_t before);

    InvariantConfig cfg;
    TraceSink *downstream = nullptr;
    std::vector<std::unique_ptr<InvariantChecker>> checkers;
    InvariantReport report_;
    std::function<void(const InvariantFinding &)> onViolation;
    Counter nChecks = 0;
    Counter nProbes = 0;
    Counter nConsumed = 0;
    Counter nBusRequests = 0;
    Counter nBusGrants = 0;
    Counter nBusNacks = 0;
    std::vector<std::int64_t> mshrPerPu;
    Cycle lastCycle = 0;
    Cycle lastCheckCycle = 0;
    bool inCheck = false;
};

} // namespace svc

#endif // SVC_COMMON_INVARIANTS_HH
