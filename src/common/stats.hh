/**
 * @file
 * Lightweight statistics collection. Components own plain counters
 * (fast, no indirection) and expose them through a StatSet snapshot
 * for reporting. A StatSet is an ordered list of typed entries —
 * scalars, counters, ratios (formulas evaluated at snapshot time)
 * and full distributions — with pretty-printing helpers. Scalar
 * entries format exactly as they always have, so golden comparisons
 * of the text output remain stable.
 */

#ifndef SVC_COMMON_STATS_HH
#define SVC_COMMON_STATS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace svc
{

class SnapshotReader;
class SnapshotWriter;

/** A simple event counter. */
using Counter = std::uint64_t;

/**
 * A sampled distribution: running min/max/mean/stddev plus an
 * optional fixed-width bucket histogram over [lo, hi). Samples
 * outside the bucketed range are tallied as underflow/overflow but
 * still contribute to the moments.
 */
class Distribution
{
  public:
    /** Moments only, no histogram. */
    Distribution() = default;

    /** Histogram of @p num_buckets equal buckets over [lo, hi). */
    Distribution(double lo, double hi, unsigned num_buckets);

    /** Record @p v, @p weight times. Inline: this runs on hot
     *  simulation paths (per access / per bus transaction). */
    void
    sample(double v, std::uint64_t weight = 1)
    {
        if (weight == 0)
            return;
        if (cnt == 0) {
            mn = mx = v;
        } else {
            mn = v < mn ? v : mn;
            mx = v > mx ? v : mx;
        }
        cnt += weight;
        sum += v * static_cast<double>(weight);
        sumSq += v * v * static_cast<double>(weight);
        if (!buckets.empty()) {
            if (v < lo) {
                under += weight;
            } else {
                const auto idx =
                    static_cast<std::size_t>((v - lo) * invWidth);
                if (idx >= buckets.size())
                    over += weight;
                else
                    buckets[idx] += weight;
            }
        }
    }

    /** Discard all samples (bucket geometry is retained). */
    void reset();

    std::uint64_t count() const { return cnt; }
    double total() const { return sum; }
    double min() const { return cnt == 0 ? 0.0 : mn; }
    double max() const { return cnt == 0 ? 0.0 : mx; }
    double mean() const;
    double stddev() const;

    bool hasBuckets() const { return !buckets.empty(); }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets.size());
    }
    std::uint64_t bucketCount(unsigned i) const { return buckets[i]; }
    double bucketLo(unsigned i) const { return lo + i * width; }
    double bucketHi(unsigned i) const { return lo + (i + 1) * width; }
    std::uint64_t underflow() const { return under; }
    std::uint64_t overflow() const { return over; }

    /** Compact single-line rendering: "cnt=.. mean=.. |h i s t|". */
    std::string summarize() const;

    /** Serialize samples + geometry for checkpointing. */
    void saveState(SnapshotWriter &w) const;

    /**
     * Restore samples saved with saveState(). The bucket geometry
     * in the snapshot must match this instance's (checkpoints are
     * only restored into an identically configured run); @return
     * false after SnapshotReader::fail() otherwise.
     */
    bool restoreState(SnapshotReader &r);

  private:
    double lo = 0.0;
    double width = 0.0;
    /** 1/width, precomputed so sample() multiplies instead of
     *  dividing. */
    double invWidth = 0.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t cnt = 0;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double mn = 0.0;
    double mx = 0.0;
};

/**
 * @return @p num / @p den, or 0.0 when the denominator is zero — a
 * run that retires nothing (e.g. a watchdog trip at cycle 0) must
 * still report finite numbers, never NaN/inf. When @p degenerate is
 * non-null it is set (not cleared) on the zero-denominator case so
 * callers can surface "this ratio is a placeholder" downstream.
 */
inline double
safeRatio(double num, double den, bool *degenerate = nullptr)
{
    if (den == 0.0) {
        if (degenerate)
            *degenerate = true;
        return 0.0;
    }
    return num / den;
}

/** The kind of a StatSet entry. */
enum class StatKind : std::uint8_t
{
    Scalar,       ///< plain double (legacy add())
    Counter,      ///< monotonic event count
    Ratio,        ///< numerator / denominator formula
    Distribution, ///< full sampled distribution
};

/** One named statistic in a snapshot. */
struct StatEntry
{
    std::string name;
    double value = 0.0;
    StatKind kind = StatKind::Scalar;
    /** Ratio whose denominator was zero: the 0.0 value is a
     *  placeholder, not a measurement. */
    bool degenerate = false;
    /** Present only for StatKind::Distribution. */
    std::shared_ptr<const Distribution> dist;
};

/**
 * An ordered snapshot of named statistics, assembled by a component
 * on demand. Supports hierarchical names ("svc.cache0.misses").
 */
class StatSet
{
  public:
    /** Append a plain scalar statistic. */
    void
    add(const std::string &name, double value)
    {
        entries.push_back(
            {name, value, StatKind::Scalar, false, nullptr});
    }

    /** Append an event counter. */
    void
    addCounter(const std::string &name, Counter value)
    {
        entries.push_back({name, static_cast<double>(value),
                           StatKind::Counter, false, nullptr});
    }

    /** Append @p num / @p den (0, flagged degenerate, when the
     *  denominator is 0). */
    void
    addRatio(const std::string &name, double num, double den)
    {
        bool degenerate = false;
        const double v = safeRatio(num, den, &degenerate);
        entries.push_back(
            {name, v, StatKind::Ratio, degenerate, nullptr});
    }

    /** Append a snapshot of @p d (scalar value = mean). */
    void
    addDistribution(const std::string &name, const Distribution &d)
    {
        entries.push_back(
            {name, d.mean(), StatKind::Distribution, false,
             std::make_shared<const Distribution>(d)});
    }

    /** Append every entry of @p other with @p prefix + "." prepended. */
    void merge(const std::string &prefix, const StatSet &other);

    /** @return the value of @p name (a distribution's mean); fatal()
     *  if absent. */
    double get(const std::string &name) const;

    /** @return true if @p name is present. */
    bool has(const std::string &name) const;

    /** @return the distribution entry @p name, or nullptr. */
    const Distribution *distribution(const std::string &name) const;

    /** @return true if every entry's value (and every distribution
     *  moment) is a finite number — the emit-to-JSON precondition. */
    bool allFinite() const;

    const std::vector<StatEntry> &all() const { return entries; }

    /** Render as aligned "name value" lines. Scalar, counter and
     *  ratio entries render one line each (format-compatible with
     *  the historical output); distribution entries expand into
     *  .count/.mean/.stddev/.min/.max lines plus a histogram. */
    std::string format() const;

  private:
    std::vector<StatEntry> entries;
};

/**
 * Fixed-column text table used by the benchmark harnesses to print
 * paper-style tables (e.g. Table 2 / Table 3 rows).
 */
class TablePrinter
{
  public:
    /** @param column_names header cells, left to right. */
    explicit TablePrinter(std::vector<std::string> column_names);

    /** Append one row; must have as many cells as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string format() const;

    /** Format a double with @p decimals digits after the point. */
    static std::string num(double v, int decimals = 3);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace svc

#endif // SVC_COMMON_STATS_HH
