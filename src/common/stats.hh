/**
 * @file
 * Lightweight statistics collection. Components own plain counters
 * (fast, no indirection) and expose them through a StatSet snapshot
 * for reporting. A StatSet is an ordered list of (name, value)
 * pairs with pretty-printing helpers.
 */

#ifndef SVC_COMMON_STATS_HH
#define SVC_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace svc
{

/** A simple event counter. */
using Counter = std::uint64_t;

/** One named statistic in a snapshot. */
struct StatEntry
{
    std::string name;
    double value;
};

/**
 * An ordered snapshot of named statistics, assembled by a component
 * on demand. Supports hierarchical names ("svc.cache0.misses").
 */
class StatSet
{
  public:
    /** Append a statistic. */
    void
    add(const std::string &name, double value)
    {
        entries.push_back({name, value});
    }

    /** Append every entry of @p other with @p prefix + "." prepended. */
    void merge(const std::string &prefix, const StatSet &other);

    /** @return the value of @p name; fatal() if absent. */
    double get(const std::string &name) const;

    /** @return true if @p name is present. */
    bool has(const std::string &name) const;

    const std::vector<StatEntry> &all() const { return entries; }

    /** Render as aligned "name value" lines. */
    std::string format() const;

  private:
    std::vector<StatEntry> entries;
};

/**
 * Fixed-column text table used by the benchmark harnesses to print
 * paper-style tables (e.g. Table 2 / Table 3 rows).
 */
class TablePrinter
{
  public:
    /** @param column_names header cells, left to right. */
    explicit TablePrinter(std::vector<std::string> column_names);

    /** Append one row; must have as many cells as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string format() const;

    /** Format a double with @p decimals digits after the point. */
    static std::string num(double v, int decimals = 3);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace svc

#endif // SVC_COMMON_STATS_HH
