#include "common/snapshot.hh"

#include <cstdio>

#include "common/posix_io.hh"

namespace svc
{

std::uint64_t
snapshotFnv1a(const void *data, std::size_t n, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::vector<std::uint8_t>
frameSnapshot(const SnapshotHeader &hdr,
              const std::vector<std::uint8_t> &body)
{
    SnapshotWriter w;
    w.putU64(kSnapshotMagic);
    w.putU32(hdr.formatVersion ? hdr.formatVersion
                               : kSnapshotVersion);
    w.putU32(hdr.flags);
    w.putU64(hdr.cycle);
    w.putU64(hdr.configHash);
    w.putBytes(body.data(), body.size());
    std::vector<std::uint8_t> image = w.bytes();
    const std::uint64_t sum =
        snapshotFnv1a(image.data(), image.size());
    for (int i = 0; i < 8; ++i)
        image.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
    return image;
}

bool
unframeSnapshot(const std::vector<std::uint8_t> &image,
                SnapshotHeader &hdr,
                const std::uint8_t *&body, std::size_t &bodyLen,
                std::string &error)
{
    // Fixed header (32 bytes) + trailing checksum (8 bytes).
    constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;
    if (image.size() < kHeaderBytes + 8) {
        error = "checkpoint is truncated: " +
                std::to_string(image.size()) +
                " bytes, need at least " +
                std::to_string(kHeaderBytes + 8);
        return false;
    }
    const std::size_t sumAt = image.size() - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(image[sumAt + i])
                  << (8 * i);
    const std::uint64_t computed =
        snapshotFnv1a(image.data(), sumAt);
    if (stored != computed) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "checkpoint checksum mismatch: stored "
                      "%016llx, computed %016llx (file is "
                      "corrupted or truncated)",
                      (unsigned long long)stored,
                      (unsigned long long)computed);
        error = buf;
        return false;
    }
    SnapshotReader r(image.data(), sumAt);
    const std::uint64_t magic = r.getU64();
    if (magic != kSnapshotMagic) {
        error = "not a checkpoint file (bad magic)";
        return false;
    }
    hdr.formatVersion = r.getU32();
    hdr.flags = r.getU32();
    hdr.cycle = r.getU64();
    hdr.configHash = r.getU64();
    if (!r.ok()) {
        error = "checkpoint header is truncated";
        return false;
    }
    if (hdr.formatVersion != kSnapshotVersion) {
        error = "unsupported checkpoint format version " +
                std::to_string(hdr.formatVersion) + " (expected " +
                std::to_string(kSnapshotVersion) + ")";
        return false;
    }
    body = image.data() + kHeaderBytes;
    bodyLen = sumAt - kHeaderBytes;
    return true;
}

bool
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &image,
                  std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        error = "cannot open '" + path + "' for writing";
        return false;
    }
    const bool wrote =
        image.empty() || fwriteAll(f, image.data(), image.size());
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

bool
readSnapshotFile(const std::string &path,
                 std::vector<std::uint8_t> &image,
                 std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open '" + path + "' for reading";
        return false;
    }
    image.clear();
    std::uint8_t buf[65536];
    std::size_t n = 0;
    bool bad = false;
    // freadSome resumes across EINTR; it returns short only at EOF
    // or on a real error.
    while (freadSome(f, buf, sizeof(buf), n) && n > 0) {
        image.insert(image.end(), buf, buf + n);
        if (std::feof(f))
            break;
    }
    bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) {
        error = "read error on '" + path + "'";
        return false;
    }
    return true;
}

} // namespace svc
