#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/log.hh"
#include "common/snapshot.hh"

namespace svc
{

Distribution::Distribution(double lo_, double hi_,
                           unsigned num_buckets)
    : lo(lo_), width((hi_ - lo_) / num_buckets),
      invWidth(num_buckets / (hi_ - lo_)), buckets(num_buckets, 0)
{
    if (num_buckets == 0 || hi_ <= lo_)
        fatal("Distribution: bad bucket geometry [%g, %g) / %u", lo_,
              hi_, num_buckets);
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    cnt = under = over = 0;
    sum = sumSq = mn = mx = 0.0;
}

double
Distribution::mean() const
{
    return cnt == 0 ? 0.0 : sum / static_cast<double>(cnt);
}

double
Distribution::stddev() const
{
    if (cnt == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSq / static_cast<double>(cnt) - m * m;
    return var <= 0.0 ? 0.0 : std::sqrt(var);
}

namespace
{

std::uint64_t
doubleBits(double v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

double
bitsDouble(std::uint64_t u)
{
    double v;
    std::memcpy(&v, &u, sizeof(v));
    return v;
}

} // namespace

void
Distribution::saveState(SnapshotWriter &w) const
{
    w.putU64(doubleBits(lo));
    w.putU64(doubleBits(width));
    w.putU64(buckets.size());
    for (std::uint64_t b : buckets)
        w.putU64(b);
    w.putU64(cnt);
    w.putU64(under);
    w.putU64(over);
    w.putU64(doubleBits(sum));
    w.putU64(doubleBits(sumSq));
    w.putU64(doubleBits(mn));
    w.putU64(doubleBits(mx));
}

bool
Distribution::restoreState(SnapshotReader &r)
{
    const double sLo = bitsDouble(r.getU64());
    const double sWidth = bitsDouble(r.getU64());
    const std::uint64_t nb = r.getCount(8);
    if (!r.ok())
        return false;
    if (sLo != lo || sWidth != width || nb != buckets.size()) {
        r.fail("snapshot: distribution bucket geometry mismatch");
        return false;
    }
    for (auto &b : buckets)
        b = r.getU64();
    cnt = r.getU64();
    under = r.getU64();
    over = r.getU64();
    sum = bitsDouble(r.getU64());
    sumSq = bitsDouble(r.getU64());
    mn = bitsDouble(r.getU64());
    mx = bitsDouble(r.getU64());
    return r.ok();
}

std::string
Distribution::summarize() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "cnt=%llu mean=%.3g sd=%.3g min=%.3g max=%.3g",
                  static_cast<unsigned long long>(cnt), mean(),
                  stddev(), min(), max());
    std::string out = buf;
    if (hasBuckets()) {
        out += " |";
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(buckets[i]));
            out += buf;
            if (i + 1 < buckets.size())
                out += ' ';
        }
        out += '|';
        if (under || over) {
            std::snprintf(buf, sizeof(buf), " under=%llu over=%llu",
                          static_cast<unsigned long long>(under),
                          static_cast<unsigned long long>(over));
            out += buf;
        }
    }
    return out;
}

void
StatSet::merge(const std::string &prefix, const StatSet &other)
{
    for (const auto &e : other.entries) {
        entries.push_back({prefix + "." + e.name, e.value, e.kind,
                           e.degenerate, e.dist});
    }
}

bool
StatSet::allFinite() const
{
    for (const auto &e : entries) {
        if (!std::isfinite(e.value))
            return false;
        if (e.dist &&
            (!std::isfinite(e.dist->mean()) ||
             !std::isfinite(e.dist->stddev()) ||
             !std::isfinite(e.dist->min()) ||
             !std::isfinite(e.dist->max())))
            return false;
    }
    return true;
}

double
StatSet::get(const std::string &name) const
{
    for (const auto &e : entries) {
        if (e.name == name)
            return e.value;
    }
    fatal("StatSet: no statistic named '%s'", name.c_str());
}

bool
StatSet::has(const std::string &name) const
{
    return std::any_of(entries.begin(), entries.end(),
                       [&](const StatEntry &e) { return e.name == name; });
}

const Distribution *
StatSet::distribution(const std::string &name) const
{
    for (const auto &e : entries) {
        if (e.name == name && e.kind == StatKind::Distribution)
            return e.dist.get();
    }
    return nullptr;
}

std::string
StatSet::format() const
{
    // Assemble (name, rendered value) lines first so distribution
    // sub-lines participate in the column alignment.
    std::vector<std::pair<std::string, std::string>> lines;
    char buf[64];
    auto num = [&](double v) {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return std::string(buf);
    };
    for (const auto &e : entries) {
        if (e.kind != StatKind::Distribution) {
            lines.emplace_back(e.name, num(e.value));
            continue;
        }
        const Distribution &d = *e.dist;
        lines.emplace_back(e.name + ".count",
                           num(static_cast<double>(d.count())));
        lines.emplace_back(e.name + ".mean", num(d.mean()));
        lines.emplace_back(e.name + ".stddev", num(d.stddev()));
        lines.emplace_back(e.name + ".min", num(d.min()));
        lines.emplace_back(e.name + ".max", num(d.max()));
        if (d.hasBuckets()) {
            std::string hist = "|";
            for (unsigned i = 0; i < d.numBuckets(); ++i) {
                std::snprintf(
                    buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(d.bucketCount(i)));
                hist += buf;
                if (i + 1 < d.numBuckets())
                    hist += ' ';
            }
            hist += '|';
            if (d.underflow() || d.overflow()) {
                std::snprintf(
                    buf, sizeof(buf), " under=%llu over=%llu",
                    static_cast<unsigned long long>(d.underflow()),
                    static_cast<unsigned long long>(d.overflow()));
                hist += buf;
            }
            lines.emplace_back(e.name + ".hist", std::move(hist));
        }
    }

    std::size_t width = 0;
    for (const auto &[name, value] : lines)
        width = std::max(width, name.size());

    std::string out;
    for (const auto &[name, value] : lines) {
        out += name;
        out.append(width - name.size() + 2, ' ');
        out += value;
        out += '\n';
    }
    return out;
}

TablePrinter::TablePrinter(std::vector<std::string> column_names)
    : header(std::move(column_names))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size())
        fatal("TablePrinter: row has %zu cells, header has %zu",
              cells.size(), header.size());
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::format() const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::string &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out.append(width[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emit_row(header, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows)
        emit_row(row, out);
    return out;
}

std::string
TablePrinter::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

} // namespace svc
