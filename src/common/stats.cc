#include "common/stats.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace svc
{

void
StatSet::merge(const std::string &prefix, const StatSet &other)
{
    for (const auto &e : other.entries)
        entries.push_back({prefix + "." + e.name, e.value});
}

double
StatSet::get(const std::string &name) const
{
    for (const auto &e : entries) {
        if (e.name == name)
            return e.value;
    }
    fatal("StatSet: no statistic named '%s'", name.c_str());
}

bool
StatSet::has(const std::string &name) const
{
    return std::any_of(entries.begin(), entries.end(),
                       [&](const StatEntry &e) { return e.name == name; });
}

std::string
StatSet::format() const
{
    std::size_t width = 0;
    for (const auto &e : entries)
        width = std::max(width, e.name.size());

    std::string out;
    char buf[64];
    for (const auto &e : entries) {
        out += e.name;
        out.append(width - e.name.size() + 2, ' ');
        std::snprintf(buf, sizeof(buf), "%.6g", e.value);
        out += buf;
        out += '\n';
    }
    return out;
}

TablePrinter::TablePrinter(std::vector<std::string> column_names)
    : header(std::move(column_names))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size())
        fatal("TablePrinter: row has %zu cells, header has %zu",
              cells.size(), header.size());
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::format() const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::string &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out.append(width[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emit_row(header, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows)
        emit_row(row, out);
    return out;
}

std::string
TablePrinter::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

} // namespace svc
