/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis and property tests. We avoid std::mt19937's size and
 * keep an explicitly specified algorithm (splitmix64 + xoshiro-style
 * output) so results are reproducible across standard libraries.
 */

#ifndef SVC_COMMON_RANDOM_HH
#define SVC_COMMON_RANDOM_HH

#include <cstdint>

namespace svc
{

/**
 * Small, fast, deterministic RNG (splitmix64). Sufficient quality
 * for workload address-stream synthesis and randomized testing;
 * never used for anything cryptographic.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed)
    {}

    /** @return the next 64 random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** @return a uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** @return true with probability @p percent / 100. */
    bool
    chance(unsigned percent)
    {
        return below(100) < percent;
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Raw generator state, for checkpointing. */
    std::uint64_t rawState() const { return state; }

    /** Restore a state captured with rawState(). */
    void setRawState(std::uint64_t s) { state = s; }

  private:
    std::uint64_t state;
};

} // namespace svc

#endif // SVC_COMMON_RANDOM_HH
