/**
 * @file
 * Crash-safe append-only record journal (write-ahead log atoms).
 *
 * A journal file is:
 *
 *   u64  magic    "SVCJRNL1" (little-endian bytes)
 *   u32  version  currently 1
 *   u32  reserved 0
 *   ...  records
 *
 * and each record is self-framed and self-checksummed:
 *
 *   u32  tag       caller-defined record kind (ASCII fourcc)
 *   u64  length    payload bytes
 *   ...  payload
 *   u64  checksum  FNV-1a over tag + length + payload bytes
 *
 * This is the same versioned/checksummed discipline as the snapshot
 * format (common/snapshot.hh) adapted to an append-only stream: the
 * checksum trails *every record* instead of the whole file, so a
 * crash mid-append leaves at most one torn record at the tail.
 * scanJournal() accepts every intact record before the tear and
 * reports the torn tail as a structured diagnostic — it never
 * crashes, never allocates unboundedly, and never yields a record
 * whose checksum does not verify.
 *
 * Durability: JournalWriter::append() writes the framed record,
 * fflush()es and fsync()s before returning, so an acknowledged
 * record survives a process crash. Compaction rewrites a fresh
 * journal to a temporary file and publishes it with
 * atomicReplaceFile() (rename(2)), so readers see either the old or
 * the new journal, never a mix.
 *
 * Error model: no exceptions. Writers and scanners return ok/error
 * pairs with structured messages.
 */

#ifndef SVC_COMMON_JOURNAL_HH
#define SVC_COMMON_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace svc
{

/** Journal file magic: "SVCJRNL1" as a little-endian u64. */
inline constexpr std::uint64_t kJournalMagic = 0x314c4e524a435653ull;

/** Current journal format version. */
inline constexpr std::uint32_t kJournalVersion = 1;

/** Journal file header size in bytes (magic + version + reserved). */
inline constexpr std::size_t kJournalHeaderBytes = 16;

/** Per-record framing overhead (tag + length + trailing checksum). */
inline constexpr std::size_t kJournalRecordOverhead = 20;

/** One intact record recovered from a journal. */
struct JournalRecord
{
    std::uint32_t tag = 0;
    std::vector<std::uint8_t> payload;
};

/** Result of scanning a journal image or file. */
struct JournalScan
{
    /** Header present and well-formed (magic + version). */
    bool headerOk = false;
    /** The tail holds a torn or corrupt record (crash mid-append). */
    bool torn = false;
    /** Byte offset of the first torn/corrupt record, if torn. */
    std::size_t tornOffset = 0;
    /**
     * Structured diagnostic: set when the header is bad, the file
     * is unreadable, or the tail is torn. A torn tail is survivable
     * (records before tornOffset are intact); a bad header is not.
     */
    std::string error;
    /** Every record whose checksum verified, in append order. */
    std::vector<JournalRecord> records;

    /** Usable for recovery: header ok (a torn tail is tolerated). */
    bool recoverable() const { return headerOk; }
};

/** Scan a journal image (see file comment for the guarantees). */
JournalScan scanJournal(const std::uint8_t *data, std::size_t n);
JournalScan scanJournal(const std::vector<std::uint8_t> &image);

/** Read and scan a journal file; a missing/unreadable file yields
 *  headerOk=false with a structured message. */
JournalScan scanJournalFile(const std::string &path);

/**
 * Chaos hook consulted before each physical record write. The hook
 * may shrink @p writeBytes below the full record size (a torn/short
 * write: the writer persists only that prefix and reports failure,
 * simulating a crash mid-append) and/or set @p stallMillis (the
 * writer sleeps that long before writing, simulating a stalled
 * journal device without corrupting anything).
 */
using JournalWriteHook = std::function<void(
    std::size_t recordBytes, std::size_t &writeBytes,
    unsigned &stallMillis)>;

/**
 * Appends framed records to a journal file with fsync durability.
 * Not thread-safe: the service serializes appends under its own
 * lock (the journal is the ordering authority anyway).
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter() { close(); }
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Open @p path for appending, writing the header if the file is
     * new or empty. An existing file's header is validated.
     * @return false with a structured message on failure.
     */
    bool open(const std::string &path, std::string &error);

    /**
     * Frame, write and fsync one record. @return false (with a
     * structured message) on an I/O error or an injected torn
     * write; the journal must then be treated as crashed and
     * re-opened through recovery.
     */
    bool append(std::uint32_t tag,
                const std::vector<std::uint8_t> &payload,
                std::string &error);

    void close();
    bool isOpen() const { return file != nullptr; }
    const std::string &path() const { return filePath; }

    /** Install a chaos hook (see JournalWriteHook). */
    void setWriteHook(JournalWriteHook hook)
    {
        writeHook = std::move(hook);
    }

    /** Records appended (and fsynced) through this writer. */
    std::uint64_t appended() const { return nAppended; }

  private:
    std::FILE *file = nullptr;
    std::string filePath;
    JournalWriteHook writeHook;
    std::uint64_t nAppended = 0;
};

/**
 * Atomically replace @p path with @p tmpPath (rename(2)): readers
 * observe either the old or the new file, never a mix. Used by
 * journal compaction. @return false + message on failure.
 */
bool atomicReplaceFile(const std::string &tmpPath,
                       const std::string &path, std::string &error);

} // namespace svc

#endif // SVC_COMMON_JOURNAL_HH
