#include "common/posix_io.hh"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace svc
{

bool
fwriteAll(std::FILE *f, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    while (n > 0) {
        const std::size_t wrote = std::fwrite(p, 1, n, f);
        p += wrote;
        n -= wrote;
        if (n == 0)
            break;
        // A short stdio write with EINTR pending is resumable once
        // the error flag is cleared; anything else is a real error.
        if (std::ferror(f) && errno == EINTR) {
            std::clearerr(f);
            continue;
        }
        return false;
    }
    return true;
}

bool
freadSome(std::FILE *f, void *out, std::size_t n, std::size_t &got)
{
    got = 0;
    auto *p = static_cast<unsigned char *>(out);
    while (got < n) {
        const std::size_t r = std::fread(p + got, 1, n - got, f);
        got += r;
        if (got == n || std::feof(f))
            return true;
        if (std::ferror(f)) {
            if (errno == EINTR) {
                std::clearerr(f);
                continue;
            }
            return false;
        }
    }
    return true;
}

bool
writeFdAll(int fd, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    while (n > 0) {
        const ssize_t wrote = ::write(fd, p, n);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += wrote;
        n -= static_cast<std::size_t>(wrote);
    }
    return true;
}

bool
readFdSome(int fd, void *out, std::size_t n, std::size_t &got)
{
    got = 0;
    for (;;) {
        const ssize_t r = ::read(fd, out, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        got = static_cast<std::size_t>(r);
        return true;
    }
}

bool
fsyncRetry(int fd)
{
    while (::fsync(fd) != 0) {
        if (errno != EINTR)
            return false;
    }
    return true;
}

bool
fsyncParentDir(const std::string &path, std::string &error)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        error = "cannot open directory '" + dir +
                "' for fsync: " + std::strerror(errno);
        return false;
    }
    const bool ok = fsyncRetry(fd);
    if (!ok)
        error = "fsync of directory '" + dir +
                "' failed: " + std::strerror(errno);
    ::close(fd);
    return ok;
}

void
ignoreSigpipe()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
}

} // namespace svc
