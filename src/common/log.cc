#include "common/log.hh"

#include <cstdarg>
#include <string>
#include <vector>

namespace svc
{

namespace
{

void
vreport(const char *prefix, const char *fmt, std::va_list ap)
{
    // Assemble the whole line before a single write so concurrent
    // reporters (the sweep runner's worker threads) can never
    // interleave mid-line. fprintf of one buffer is atomic per the
    // stdio stream lock; three separate calls are not.
    std::va_list ap2;
    va_copy(ap2, ap);
    const int body = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    std::string line(prefix);
    line += ": ";
    if (body > 0) {
        std::vector<char> buf(static_cast<std::size_t>(body) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap);
        line.append(buf.data(), static_cast<std::size_t>(body));
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (static_cast<int>(Logger::level()) <
        static_cast<int>(LogLevel::Warn))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (static_cast<int>(Logger::level()) <
        static_cast<int>(LogLevel::Inform))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace svc
