#include "common/log.hh"

#include <cstdarg>

namespace svc
{

namespace
{

void
vreport(const char *prefix, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (static_cast<int>(Logger::level()) <
        static_cast<int>(LogLevel::Warn))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (static_cast<int>(Logger::level()) <
        static_cast<int>(LogLevel::Inform))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace svc
