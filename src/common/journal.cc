#include "common/journal.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <unistd.h>

#include "common/posix_io.hh"
#include "common/snapshot.hh"

namespace svc
{
namespace
{

void
putLeU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putLeU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getLeU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getLeU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::string
tornMessage(const char *what, std::size_t offset)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "journal: torn tail at byte %zu: %s (records "
                  "before the tear are intact)",
                  offset, what);
    return buf;
}

} // namespace

JournalScan
scanJournal(const std::uint8_t *data, std::size_t n)
{
    JournalScan scan;
    if (n < kJournalHeaderBytes) {
        scan.error = "journal: file shorter than the 16-byte header";
        return scan;
    }
    if (getLeU64(data) != kJournalMagic) {
        scan.error = "journal: bad magic (not a SVCJRNL1 journal)";
        return scan;
    }
    const std::uint32_t version = getLeU32(data + 8);
    if (version != kJournalVersion) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "journal: unsupported format version %u "
                      "(expected %u)",
                      version, kJournalVersion);
        scan.error = buf;
        return scan;
    }
    scan.headerOk = true;

    std::size_t pos = kJournalHeaderBytes;
    while (pos < n) {
        const std::size_t recordStart = pos;
        if (n - pos < 12) {
            scan.torn = true;
            scan.tornOffset = recordStart;
            scan.error =
                tornMessage("truncated record frame", recordStart);
            return scan;
        }
        const std::uint32_t tag = getLeU32(data + pos);
        const std::uint64_t len = getLeU64(data + pos + 4);
        if (len > n - pos - 12 ||
            n - pos - 12 - static_cast<std::size_t>(len) < 8) {
            scan.torn = true;
            scan.tornOffset = recordStart;
            scan.error = tornMessage(
                "payload length exceeds remaining bytes",
                recordStart);
            return scan;
        }
        const std::size_t payloadAt = pos + 12;
        const std::size_t checksumAt =
            payloadAt + static_cast<std::size_t>(len);
        const std::uint64_t want = getLeU64(data + checksumAt);
        const std::uint64_t got =
            snapshotFnv1a(data + recordStart, checksumAt - recordStart);
        if (want != got) {
            scan.torn = true;
            scan.tornOffset = recordStart;
            scan.error =
                tornMessage("record checksum mismatch", recordStart);
            return scan;
        }
        JournalRecord rec;
        rec.tag = tag;
        rec.payload.assign(data + payloadAt, data + checksumAt);
        scan.records.push_back(std::move(rec));
        pos = checksumAt + 8;
    }
    return scan;
}

JournalScan
scanJournal(const std::vector<std::uint8_t> &image)
{
    return scanJournal(image.data(), image.size());
}

JournalScan
scanJournalFile(const std::string &path)
{
    std::vector<std::uint8_t> image;
    std::string err;
    if (!readSnapshotFile(path, image, err)) {
        JournalScan scan;
        scan.error = err;
        return scan;
    }
    return scanJournal(image);
}

bool
JournalWriter::open(const std::string &path, std::string &error)
{
    close();
    // "a+b" creates if absent and positions writes at the end.
    std::FILE *f = std::fopen(path.c_str(), "a+b");
    if (!f) {
        error = "journal: cannot open '" + path +
                "': " + std::strerror(errno);
        return false;
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size == 0) {
        std::vector<std::uint8_t> hdr;
        putLeU64(hdr, kJournalMagic);
        putLeU32(hdr, kJournalVersion);
        putLeU32(hdr, 0);
        if (!fwriteAll(f, hdr.data(), hdr.size()) ||
            std::fflush(f) != 0 || !fsyncRetry(fileno(f))) {
            error = "journal: cannot write header to '" + path + "'";
            std::fclose(f);
            return false;
        }
    } else {
        // Validate the existing header before appending to it.
        std::uint8_t hdr[kJournalHeaderBytes];
        std::fseek(f, 0, SEEK_SET);
        std::size_t got = 0;
        if (!freadSome(f, hdr, sizeof(hdr), got) ||
            got != sizeof(hdr) || getLeU64(hdr) != kJournalMagic ||
            getLeU32(hdr + 8) != kJournalVersion) {
            error = "journal: '" + path +
                    "' exists but is not a version-" +
                    std::to_string(kJournalVersion) +
                    " SVCJRNL1 journal";
            std::fclose(f);
            return false;
        }
        std::fseek(f, 0, SEEK_END);
    }
    file = f;
    filePath = path;
    return true;
}

bool
JournalWriter::append(std::uint32_t tag,
                      const std::vector<std::uint8_t> &payload,
                      std::string &error)
{
    if (!file) {
        error = "journal: append on a closed journal";
        return false;
    }
    std::vector<std::uint8_t> frame;
    frame.reserve(payload.size() + kJournalRecordOverhead);
    putLeU32(frame, tag);
    putLeU64(frame, payload.size());
    frame.insert(frame.end(), payload.begin(), payload.end());
    putLeU64(frame, snapshotFnv1a(frame.data(), frame.size()));

    std::size_t writeBytes = frame.size();
    unsigned stallMillis = 0;
    if (writeHook)
        writeHook(frame.size(), writeBytes, stallMillis);
    if (stallMillis)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stallMillis));
    if (writeBytes > frame.size())
        writeBytes = frame.size();

    // fwriteAll resumes across EINTR, so a signal cannot masquerade
    // as a torn write; only an injected tear or a real device error
    // leaves the record short.
    const bool wroteAll = fwriteAll(file, frame.data(), writeBytes);
    const bool flushed =
        std::fflush(file) == 0 && fsyncRetry(fileno(file));
    if (!wroteAll || writeBytes != frame.size()) {
        // A short write — injected or real — leaves a torn record
        // at the tail. The journal is now crashed: recovery must
        // re-scan it (the tear is detected by the record checksum).
        error = "journal: short write to '" + filePath + "' (" +
                std::to_string(wroteAll ? writeBytes : 0) + " of " +
                std::to_string(frame.size()) + " bytes persisted)";
        return false;
    }
    if (!flushed) {
        error = "journal: flush/fsync of '" + filePath + "' failed";
        return false;
    }
    ++nAppended;
    return true;
}

void
JournalWriter::close()
{
    if (file) {
        std::fflush(file);
        fsyncRetry(fileno(file));
        std::fclose(file);
        file = nullptr;
    }
}

bool
atomicReplaceFile(const std::string &tmpPath,
                  const std::string &path, std::string &error)
{
    if (std::rename(tmpPath.c_str(), path.c_str()) != 0) {
        error = "journal: cannot rename '" + tmpPath + "' over '" +
                path + "': " + std::strerror(errno);
        return false;
    }
    // The rename itself is not durable until the parent directory's
    // entry is: a crash after rename but before the metadata hits
    // disk can resurrect the old file (or leave neither). Callers
    // fsync the file's *contents* before renaming; this completes
    // the discipline.
    return fsyncParentDir(path, error);
}

} // namespace svc
