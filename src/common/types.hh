/**
 * @file
 * Fundamental scalar types shared by every module of the SVC
 * reproduction: addresses, cycles, processing-unit and task
 * identifiers, and a handful of well-known constants.
 */

#ifndef SVC_COMMON_TYPES_HH
#define SVC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace svc
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** 32-bit data word (the MiniISA word size). */
using Word = std::uint32_t;

/** Simulation time measured in processor clock cycles. */
using Cycle = std::uint64_t;

/**
 * Identifier of a processing unit and, equivalently, of its private
 * L1 cache. PUs are numbered 0..numPus-1. The hardware VOL pointers
 * name PUs, never tasks (paper section 3.2, modification 2).
 */
using PuId = std::uint32_t;

/**
 * Dynamic task sequence number. Strictly increasing in program
 * order; used by the simulator and tests to express the total order
 * among tasks. The modeled hardware never stores these — it derives
 * order from the task-assignment information of the sequencer.
 */
using TaskSeq = std::uint64_t;

/** Sentinel meaning "no PU" (e.g., a null VOL pointer). */
inline constexpr PuId kNoPu = std::numeric_limits<PuId>::max();

/** Sentinel meaning "no task". */
inline constexpr TaskSeq kNoTask = std::numeric_limits<TaskSeq>::max();

/** Sentinel for an invalid address. */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/**
 * Wake-scheduling sentinel: "this component never needs another
 * tick" (no pending work, no armed timer). The event-driven driver
 * takes the minimum over all components' next-wake cycles, so the
 * max value is the identity element.
 */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Number of bytes in a MiniISA word. */
inline constexpr unsigned kWordBytes = 4;

/** Memory access size in bytes (byte-level disambiguation support). */
enum class AccessSize : std::uint8_t { Byte = 1, Half = 2, Word = 4 };

} // namespace svc

#endif // SVC_COMMON_TYPES_HH
