/**
 * @file
 * Minimal leveled logging plus the gem5-style panic()/fatal()
 * termination helpers. Logging is compiled in always but filtered by
 * a global level so the simulator remains fast when quiet.
 */

#ifndef SVC_COMMON_LOG_HH
#define SVC_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace svc
{

/** Severity levels, most severe first. */
enum class LogLevel : int
{
    Quiet = 0,   ///< nothing
    Warn = 1,    ///< suspicious but survivable conditions
    Inform = 2,  ///< status messages
    Debug = 3,   ///< per-event protocol tracing
    Trace = 4,   ///< per-cycle firehose
};

/** Global log configuration (a deliberately simple singleton). */
class Logger
{
  public:
    static LogLevel level() { return currentLevel; }
    static void setLevel(LogLevel lvl) { currentLevel = lvl; }

    /** Emit one formatted line if @p lvl is enabled. */
    template <typename... Args>
    static void
    log(LogLevel lvl, const char *tag, const char *fmt, Args &&...args)
    {
        if (static_cast<int>(lvl) > static_cast<int>(currentLevel))
            return;
        std::fprintf(stderr, "[%s] ", tag);
        if constexpr (sizeof...(Args) == 0)
            std::fputs(fmt, stderr);
        else
            std::fprintf(stderr, fmt, std::forward<Args>(args)...);
        std::fputc('\n', stderr);
    }

  private:
    static inline LogLevel currentLevel = LogLevel::Warn;
};

/**
 * Abort on an internal simulator bug — a condition that must never
 * happen regardless of user input (gem5 panic semantics).
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit on a user error (bad configuration, invalid workload) — the
 * simulation cannot continue but the simulator itself is not broken
 * (gem5 fatal semantics).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about survivable but suspicious conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace svc

/** Per-event protocol tracing; compiled in, filtered at runtime. */
#define SVC_DEBUG(tag, ...) \
    ::svc::Logger::log(::svc::LogLevel::Debug, tag, __VA_ARGS__)

/** Per-cycle tracing (very verbose). */
#define SVC_TRACE(tag, ...) \
    ::svc::Logger::log(::svc::LogLevel::Trace, tag, __VA_ARGS__)

#endif // SVC_COMMON_LOG_HH
