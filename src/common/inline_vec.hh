/**
 * @file
 * A small-buffer vector for hot-path aggregates: up to N elements
 * live inline (no heap traffic at all), larger sizes spill to a
 * heap buffer. Built for the VOL snoop fast path, where every bus
 * transaction used to pay one std::vector allocation per snooped
 * line; with the common case (nodes <= numPus <= N) the container
 * is a plain array copy.
 *
 * Restricted to trivially copyable element types so growth and
 * copies are memcpy and destruction is trivial — which is exactly
 * what the protocol's POD node records need, and what keeps this
 * simpler than a general small_vector.
 */

#ifndef SVC_COMMON_INLINE_VEC_HH
#define SVC_COMMON_INLINE_VEC_HH

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <utility>

namespace svc
{

template <typename T, std::size_t N>
class InlineVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "InlineVec is restricted to trivially copyable "
                  "types (growth and copies are memcpy)");
    static_assert(N > 0, "InlineVec needs a non-empty inline buffer");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    InlineVec() = default;

    InlineVec(std::initializer_list<T> init)
    {
        append(init.begin(), init.end());
    }

    InlineVec(const InlineVec &other) { assign(other); }

    InlineVec(InlineVec &&other) noexcept { steal(std::move(other)); }

    InlineVec &
    operator=(const InlineVec &other)
    {
        if (this != &other) {
            release();
            assign(other);
        }
        return *this;
    }

    InlineVec &
    operator=(InlineVec &&other) noexcept
    {
        if (this != &other) {
            release();
            steal(std::move(other));
        }
        return *this;
    }

    ~InlineVec() { release(); }

    T *begin() { return data(); }
    T *end() { return data() + count; }
    const T *begin() const { return data(); }
    const T *end() const { return data() + count; }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }
    T &front() { return data()[0]; }
    const T &front() const { return data()[0]; }
    T &back() { return data()[count - 1]; }
    const T &back() const { return data()[count - 1]; }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    std::size_t capacity() const { return heap ? heapCap : N; }

    /** @return true while no heap spill has happened (telemetry). */
    bool inlineStorage() const { return heap == nullptr; }

    void
    push_back(const T &v)
    {
        if (count == capacity())
            grow(count + 1);
        data()[count++] = v;
    }

    void
    pop_back()
    {
        --count;
    }

    /** Remove the element at index @p i, shifting the tail down. */
    void
    eraseAt(std::size_t i)
    {
        T *d = data();
        std::memmove(d + i, d + i + 1,
                     (count - i - 1) * sizeof(T));
        --count;
    }

    /** Append the range [@p first, @p last). */
    void
    append(const T *first, const T *last)
    {
        const std::size_t n =
            static_cast<std::size_t>(last - first);
        if (count + n > capacity())
            grow(count + n);
        std::memcpy(data() + count, first, n * sizeof(T));
        count += n;
    }

    void
    clear()
    {
        count = 0;
    }

    bool
    operator==(const InlineVec &other) const
    {
        if (count != other.count)
            return false;
        for (std::size_t i = 0; i < count; ++i) {
            if (!(data()[i] == other.data()[i]))
                return false;
        }
        return true;
    }

  private:
    T *data() { return heap ? heap : reinterpret_cast<T *>(stack); }
    const T *
    data() const
    {
        return heap ? heap : reinterpret_cast<const T *>(stack);
    }

    void
    grow(std::size_t need)
    {
        std::size_t cap = capacity() * 2;
        if (cap < need)
            cap = need;
        T *buf = new T[cap];
        std::memcpy(buf, data(), count * sizeof(T));
        delete[] heap;
        heap = buf;
        heapCap = cap;
    }

    void
    assign(const InlineVec &other)
    {
        count = other.count;
        if (other.heap) {
            heap = new T[other.heapCap];
            heapCap = other.heapCap;
            std::memcpy(heap, other.heap, count * sizeof(T));
        } else {
            heap = nullptr;
            heapCap = 0;
            std::memcpy(stack, other.stack, count * sizeof(T));
        }
    }

    void
    steal(InlineVec &&other)
    {
        count = other.count;
        heap = other.heap;
        heapCap = other.heapCap;
        if (!heap)
            std::memcpy(stack, other.stack, count * sizeof(T));
        other.heap = nullptr;
        other.heapCap = 0;
        other.count = 0;
    }

    void
    release()
    {
        delete[] heap;
        heap = nullptr;
        heapCap = 0;
    }

    alignas(T) unsigned char stack[N * sizeof(T)];
    T *heap = nullptr;
    std::size_t heapCap = 0;
    std::size_t count = 0;
};

} // namespace svc

#endif // SVC_COMMON_INLINE_VEC_HH
