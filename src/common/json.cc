#include "common/json.hh"

#include <cmath>
#include <cstdio>

namespace svc
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (pendingKey) {
        pendingKey = false;
        return; // the key() already emitted comma + indentation
    }
    if (depth.empty())
        return;
    if (depth.back() > 0)
        out += ',';
    ++depth.back();
    indent();
}

void
JsonWriter::indent()
{
    if (!prettyPrint)
        return;
    out += '\n';
    out.append(2 * depth.size(), ' ');
}

void
JsonWriter::raw(const std::string &s)
{
    separate();
    out += s;
}

void
JsonWriter::beginObject()
{
    separate();
    out += '{';
    depth.push_back(0);
}

void
JsonWriter::endObject()
{
    const bool had_items = depth.back() > 0;
    depth.pop_back();
    if (had_items)
        indent();
    out += '}';
}

void
JsonWriter::beginArray()
{
    separate();
    out += '[';
    depth.push_back(0);
}

void
JsonWriter::endArray()
{
    const bool had_items = depth.back() > 0;
    depth.pop_back();
    if (had_items)
        indent();
    out += ']';
}

void
JsonWriter::key(const std::string &name)
{
    if (depth.back() > 0)
        out += ',';
    ++depth.back();
    indent();
    out += '"';
    out += jsonEscape(name);
    out += prettyPrint ? "\": " : "\":";
    pendingKey = true;
}

void
JsonWriter::value(const std::string &v)
{
    raw('"' + jsonEscape(v) + '"');
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    if (!std::isfinite(v)) {
        nonFinite = true;
        v = 0.0;
    }
    char buf[40];
    // 17 significant digits round-trip any double exactly, making
    // the byte stream a function of the values alone.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    raw(buf);
}

void
JsonWriter::value(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    raw(buf);
}

void
JsonWriter::value(std::int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    raw(buf);
}

void
JsonWriter::value(bool v)
{
    raw(v ? "true" : "false");
}

} // namespace svc
