/**
 * @file
 * Versioned, checksummed binary snapshots (checkpoints).
 *
 * A snapshot file is:
 *
 *   u64  magic          "SVCSNAP1" (little-endian bytes)
 *   u32  formatVersion  currently 1
 *   u32  flags          bit 0: quiescent (restorable); a forced
 *                       diagnostic snapshot clears it
 *   u64  cycle          simulated cycle the snapshot was taken at
 *   u64  configHash     FNV-1a hash of the canonical run config
 *   ...  sections       { u32 tag, u64 length, length bytes } ...
 *   u64  checksum       FNV-1a over every preceding byte
 *
 * All integers are little-endian. Components serialize themselves
 * into sections with SnapshotWriter and read themselves back with
 * SnapshotReader. The reader is fully bounds-checked: a truncated
 * or corrupted file produces a structured error message (the
 * checksum is verified before any section is parsed), never
 * undefined behaviour and never an unbounded allocation.
 *
 * Error model: no exceptions. Both writer and reader carry an
 * ok/error pair; the first failure sticks and subsequent reads
 * return zero values. Callers check ok() once at the end.
 */

#ifndef SVC_COMMON_SNAPSHOT_HH
#define SVC_COMMON_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace svc
{

/** Snapshot file magic: "SVCSNAP1" as a little-endian u64. */
inline constexpr std::uint64_t kSnapshotMagic = 0x3150414e53435653ull;

/** Current snapshot format version. */
inline constexpr std::uint32_t kSnapshotVersion = 1;

/** Header flag: snapshot was taken at a quiescent point. */
inline constexpr std::uint32_t kSnapFlagQuiescent = 1u << 0;

/** FNV-1a over @p n bytes, continuing from @p seed. */
std::uint64_t snapshotFnv1a(const void *data, std::size_t n,
                            std::uint64_t seed = 0xcbf29ce484222325ull);

/** Section tags (ASCII fourcc) used by the checkpoint layers. */
enum class SnapSection : std::uint32_t
{
    Processor  = 0x434f5250, // "PROC" - multiscalar sequencer + PUs
    SpecMem    = 0x534d454d, // "MEMS" - memory-system state
    MainMemory = 0x4d454d4d, // "MMEM" - sparse backing store
    Faults     = 0x544c4146, // "FALT" - fault injector + RNG
    Recovery   = 0x52564352, // "RCVR" - recovery-manager state
};

/**
 * Accumulates a snapshot into a byte buffer. Primitive writes
 * append little-endian; sections frame component payloads so a
 * reader can skip unknown tags.
 */
class SnapshotWriter
{
  public:
    SnapshotWriter() { buf.reserve(4096); }

    void putU8(std::uint8_t v) { buf.push_back(v); }

    void
    putU32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    putU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void putBool(bool v) { putU8(v ? 1 : 0); }

    void
    putBytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf.insert(buf.end(), p, p + n);
    }

    /** Length-prefixed byte vector. */
    void
    putVec(const std::vector<std::uint8_t> &v)
    {
        putU64(v.size());
        putBytes(v.data(), v.size());
    }

    /** Length-prefixed string. */
    void
    putString(const std::string &s)
    {
        putU64(s.size());
        putBytes(s.data(), s.size());
    }

    /**
     * Open a section: writes the tag and a length placeholder.
     * Sections must be closed in LIFO order with endSection().
     */
    void
    beginSection(SnapSection tag)
    {
        putU32(static_cast<std::uint32_t>(tag));
        sectionStack.push_back(buf.size());
        putU64(0); // length patched by endSection()
    }

    void
    endSection()
    {
        const std::size_t at = sectionStack.back();
        sectionStack.pop_back();
        const std::uint64_t len = buf.size() - at - 8;
        for (int i = 0; i < 8; ++i)
            buf[at + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(len >> (8 * i));
    }

    const std::vector<std::uint8_t> &bytes() const { return buf; }

  private:
    std::vector<std::uint8_t> buf;
    std::vector<std::size_t> sectionStack;
};

/**
 * Bounds-checked reader over a snapshot byte buffer. Any read past
 * the end (or past the current section) sets a sticky error and
 * returns zero; vector/string lengths are validated against the
 * remaining bytes before allocating.
 */
class SnapshotReader
{
  public:
    SnapshotReader(const std::uint8_t *data, std::size_t n)
        : base(data), size(n)
    {}

    explicit SnapshotReader(const std::vector<std::uint8_t> &v)
        : base(v.data()), size(v.size())
    {}

    bool ok() const { return okFlag; }
    const std::string &error() const { return errorMsg; }

    /** Record a structured failure; the first message sticks. */
    void
    fail(const std::string &msg)
    {
        if (okFlag) {
            okFlag = false;
            errorMsg = msg;
        }
    }

    std::size_t remaining() const
    {
        return okFlag ? limit - pos : 0;
    }

    std::uint8_t
    getU8()
    {
        if (!need(1))
            return 0;
        return base[pos++];
    }

    std::uint32_t
    getU32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(base[pos++]) << (8 * i);
        return v;
    }

    std::uint64_t
    getU64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(base[pos++]) << (8 * i);
        return v;
    }

    bool getBool() { return getU8() != 0; }

    bool
    getBytes(void *out, std::size_t n)
    {
        if (!need(n)) {
            std::memset(out, 0, n);
            return false;
        }
        std::memcpy(out, base + pos, n);
        pos += n;
        return true;
    }

    std::vector<std::uint8_t>
    getVec()
    {
        const std::uint64_t n = getU64();
        if (!okFlag || n > remaining()) {
            fail("snapshot: vector length exceeds remaining bytes");
            return {};
        }
        std::vector<std::uint8_t> v(static_cast<std::size_t>(n));
        getBytes(v.data(), v.size());
        return v;
    }

    std::string
    getString()
    {
        const std::uint64_t n = getU64();
        if (!okFlag || n > remaining()) {
            fail("snapshot: string length exceeds remaining bytes");
            return {};
        }
        std::string s(static_cast<std::size_t>(n), '\0');
        getBytes(s.empty() ? nullptr : &s[0], s.size());
        return s;
    }

    /**
     * Validate an element count read from the stream against the
     * minimum encoded size per element, so corruption cannot force
     * a huge allocation. @return the count, or 0 after fail().
     */
    std::uint64_t
    getCount(std::size_t minBytesPerElem)
    {
        const std::uint64_t n = getU64();
        if (!okFlag)
            return 0;
        if (minBytesPerElem == 0)
            minBytesPerElem = 1;
        if (n > remaining() / minBytesPerElem) {
            fail("snapshot: element count exceeds remaining bytes");
            return 0;
        }
        return n;
    }

    /**
     * Enter the next section, which must carry @p tag; the reader
     * is then clamped to the section payload until endSection().
     */
    bool
    beginSection(SnapSection tag)
    {
        const std::uint32_t got = getU32();
        const std::uint64_t len = getU64();
        if (!okFlag)
            return false;
        if (got != static_cast<std::uint32_t>(tag)) {
            fail("snapshot: unexpected section tag");
            return false;
        }
        if (len > remaining()) {
            fail("snapshot: section length exceeds remaining bytes");
            return false;
        }
        limitStack.push_back(limit);
        limit = pos + static_cast<std::size_t>(len);
        return true;
    }

    /** Leave the current section (skipping any unread payload). */
    void
    endSection()
    {
        if (limitStack.empty()) {
            fail("snapshot: endSection without beginSection");
            return;
        }
        if (okFlag)
            pos = limit;
        limit = limitStack.back();
        limitStack.pop_back();
    }

  private:
    bool
    need(std::size_t n)
    {
        if (!okFlag)
            return false;
        if (limit - pos < n) {
            fail("snapshot: truncated (read past end of data)");
            return false;
        }
        return true;
    }

    const std::uint8_t *base;
    std::size_t size;
    std::size_t pos = 0;
    std::size_t limit{size};
    std::vector<std::size_t> limitStack;
    bool okFlag = true;
    std::string errorMsg;
};

/** Parsed snapshot file header (see file comment for layout). */
struct SnapshotHeader
{
    std::uint32_t formatVersion = 0;
    std::uint32_t flags = 0;
    std::uint64_t cycle = 0;
    std::uint64_t configHash = 0;

    bool quiescent() const { return flags & kSnapFlagQuiescent; }
};

/**
 * Frame @p body (the concatenated sections) into a complete file
 * image: header + body + trailing checksum.
 */
std::vector<std::uint8_t>
frameSnapshot(const SnapshotHeader &hdr,
              const std::vector<std::uint8_t> &body);

/**
 * Verify magic/version/checksum of a complete file image and parse
 * the header. On success @p body is positioned over the section
 * bytes. @return false with a structured message in @p error on
 * any mismatch (wrong magic, unsupported version, bad checksum,
 * truncation).
 */
bool unframeSnapshot(const std::vector<std::uint8_t> &image,
                     SnapshotHeader &hdr,
                     const std::uint8_t *&body, std::size_t &bodyLen,
                     std::string &error);

/** Write @p image to @p path. @return false + message on I/O error. */
bool writeSnapshotFile(const std::string &path,
                       const std::vector<std::uint8_t> &image,
                       std::string &error);

/** Read a whole file. @return false + message on I/O error. */
bool readSnapshotFile(const std::string &path,
                      std::vector<std::uint8_t> &image,
                      std::string &error);

} // namespace svc

#endif // SVC_COMMON_SNAPSHOT_HH
