/**
 * @file
 * Structured event tracing. Components emit typed TraceEvents (bus
 * request/grant/release, VCL dispositions, line-state transitions,
 * MSHR allocate/retire, task lifecycle) into a pluggable TraceSink.
 * Tracing is zero-overhead when disabled: every emit point is a
 * single null-pointer test, and no sink is installed by default.
 *
 * Three sinks are provided:
 *  - TextTraceSink: deterministic one-line-per-event text, suitable
 *    for diffing two runs (same seed => byte-identical trace);
 *  - ChromeTraceSink: the Chrome trace_event JSON array format —
 *    open the file in chrome://tracing (or ui.perfetto.dev) to see
 *    bus occupancy and task lifecycles on a timeline;
 *  - CountingTraceSink: per-category event counters for tests.
 */

#ifndef SVC_COMMON_TRACE_HH
#define SVC_COMMON_TRACE_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace svc
{

/** Top-level event taxonomy (see DESIGN.md "Observability"). */
enum class TraceCat : std::uint8_t
{
    Bus,  ///< snooping-bus arbitration: request, grant, release
    Vcl,  ///< VCL dispositions: hits, bus reads/writes, violations
    Line, ///< line-state transitions: castout, purge, snarf, update
    Mshr, ///< MSHR allocate / combine / retire / full-stall
    Task, ///< task lifecycle: assign, commit, squash, mispredict
};

/** Number of trace categories (for counting sinks). */
inline constexpr unsigned kNumTraceCats = 5;

/** @return a printable name for @p cat ("bus", "vcl", ...). */
const char *traceCatName(TraceCat cat);

/**
 * One structured trace event. The name and detail strings must be
 * string literals (sinks keep only the pointer while formatting).
 * Events with dur > 0 are spans (e.g. a granted bus transaction);
 * dur == 0 means an instant event.
 */
struct TraceEvent
{
    Cycle cycle = 0;
    Cycle dur = 0;
    TraceCat cat = TraceCat::Bus;
    const char *name = "";
    PuId pu = kNoPu;
    Addr addr = kNoAddr;
    std::uint64_t arg = 0;       ///< event-specific (seq, count, ...)
    const char *detail = nullptr; ///< event-specific qualifier
};

/** Abstract destination for trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceEvent &ev) = 0;
    /** Complete any buffered output (called at end of run). */
    virtual void flush() {}
};

/** Deterministic aligned-text sink, one line per event. */
class TextTraceSink : public TraceSink
{
  public:
    /** @param os destination stream (not owned). */
    explicit TextTraceSink(std::ostream &os) : out(os) {}
    void emit(const TraceEvent &ev) override;
    void flush() override;

  private:
    std::ostream &out;
};

/**
 * Chrome trace_event JSON sink. Produces a JSON array of events
 * ("X" complete events for spans, "i" instant events otherwise),
 * with the PU as the thread id so chrome://tracing lays out one
 * swim-lane per processing unit.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    /** @param os destination stream (not owned). */
    explicit ChromeTraceSink(std::ostream &os);
    ~ChromeTraceSink() override;
    void emit(const TraceEvent &ev) override;
    /** Close the JSON array (idempotent). */
    void flush() override;

  private:
    std::ostream &out;
    bool first = true;
    bool closed = false;
};

/** Counts events per category; for tests and cheap summaries. */
class CountingTraceSink : public TraceSink
{
  public:
    void
    emit(const TraceEvent &ev) override
    {
        ++total;
        ++perCat[static_cast<unsigned>(ev.cat)];
    }

    std::uint64_t count(TraceCat cat) const
    {
        return perCat[static_cast<unsigned>(cat)];
    }

    std::uint64_t total = 0;
    std::uint64_t perCat[kNumTraceCats] = {};
};

/**
 * Keeps the last N events as formatted text lines (the same format
 * TextTraceSink writes). The watchdog diagnostic bundle dumps this
 * ring so a wedged run's recent history survives even when full
 * tracing was never enabled. O(1) per event, bounded memory.
 */
class RingTraceSink : public TraceSink
{
  public:
    explicit RingTraceSink(std::size_t capacity = 256);
    void emit(const TraceEvent &ev) override;

    /** Events seen so far (including those that fell off). */
    std::uint64_t seen() const { return total; }

    /** The retained lines, oldest first, with a header. */
    std::string dump() const;

  private:
    std::vector<std::string> lines; ///< ring buffer of capacity()
    std::size_t head = 0;           ///< next slot to overwrite
    std::uint64_t total = 0;
};

/** Forwards every event to two sinks (either may be null). */
class TeeTraceSink : public TraceSink
{
  public:
    TeeTraceSink(TraceSink *a_, TraceSink *b_) : a(a_), b(b_) {}

    void
    emit(const TraceEvent &ev) override
    {
        if (a)
            a->emit(ev);
        if (b)
            b->emit(ev);
    }

    void
    flush() override
    {
        if (a)
            a->flush();
        if (b)
            b->flush();
    }

  private:
    TraceSink *a;
    TraceSink *b;
};

/**
 * A TraceSink that owns the file stream it writes to; flushes and
 * closes on destruction.
 */
class FileTraceSink : public TraceSink
{
  public:
    /**
     * Open @p path and trace into it; the format is chosen by
     * extension (".json" => Chrome trace_event, else text).
     * fatal() if the file cannot be opened.
     */
    explicit FileTraceSink(const std::string &path);
    ~FileTraceSink() override;
    void emit(const TraceEvent &ev) override;
    void flush() override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/** Convenience: open a FileTraceSink (see above). */
std::unique_ptr<TraceSink> openTraceSink(const std::string &path);

/**
 * Non-fatal variant for tools that want to report the problem and
 * exit cleanly: @return nullptr if @p path cannot be opened for
 * writing, with a description in @p error.
 */
std::unique_ptr<TraceSink> tryOpenTraceSink(const std::string &path,
                                            std::string &error);

} // namespace svc

#endif // SVC_COMMON_TRACE_HH
