#include "common/invariants.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/log.hh"

namespace svc
{

namespace
{

bool
checksDefault()
{
    const char *env = std::getenv("SVC_CHECKS");
    if (env && std::strcmp(env, "0") == 0)
        return false;
    return true;
}

bool &
checksFlag()
{
    static bool enabled = checksDefault();
    return enabled;
}

} // namespace

bool
runtimeChecksEnabled()
{
    return checksFlag();
}

void
setRuntimeChecks(bool enabled)
{
    checksFlag() = enabled;
}

std::string
InvariantReport::format() const
{
    std::ostringstream os;
    os << "invariant report: " << nFlagged << " finding(s)";
    if (nSuppressed)
        os << " (" << nSuppressed << " suppressed)";
    os << "\n";
    for (const InvariantFinding &f : list) {
        os << "  [" << f.invariant << "] cycle " << f.cycle;
        if (f.pu != kNoPu)
            os << " pu " << f.pu;
        if (f.addr != kNoAddr)
            os << " addr 0x" << std::hex << f.addr << std::dec;
        os << ": " << f.message << "\n";
        if (!f.diagnostic.empty()) {
            std::istringstream lines(f.diagnostic);
            std::string line;
            while (std::getline(lines, line))
                os << "    | " << line << "\n";
        }
    }
    return os.str();
}

InvariantEngine::InvariantEngine(InvariantConfig config)
    : cfg(config), report_(config.maxFindings)
{}

void
InvariantEngine::addChecker(std::unique_ptr<InvariantChecker> checker)
{
    checkers.push_back(std::move(checker));
}

void
InvariantEngine::emit(const TraceEvent &ev)
{
    lastCycle = ev.cycle;

    // Conservation bookkeeping from well-known event names. The
    // names are part of the observability layer's stable vocabulary
    // (DESIGN.md "Observability").
    if (ev.cat == TraceCat::Bus) {
        if (std::strcmp(ev.name, "bus_request") == 0)
            ++nBusRequests;
        else if (std::strcmp(ev.name, "bus_grant") == 0)
            ++nBusGrants;
        else if (std::strcmp(ev.name, "bus_nack") == 0)
            ++nBusNacks;
    } else if (ev.cat == TraceCat::Mshr && ev.pu != kNoPu) {
        if (mshrPerPu.size() <= ev.pu)
            mshrPerPu.resize(ev.pu + 1, 0);
        if (std::strcmp(ev.name, "mshr_alloc") == 0)
            ++mshrPerPu[ev.pu];
        else if (std::strcmp(ev.name, "mshr_retire") == 0)
            --mshrPerPu[ev.pu];
    }

    if (downstream)
        downstream->emit(ev);

    // Anchor the checks on completed bus transactions: at grant
    // time the perform() callback has finished every protocol state
    // change, so the global state is consistent.
    if (ev.cat == TraceCat::Bus &&
        std::strcmp(ev.name, "bus_grant") == 0 && !inCheck) {
        if (cfg.granularity == CheckGranularity::EveryBusTransaction)
            runChecks(ev.cycle);
        else if (cfg.granularity == CheckGranularity::EveryNCycles &&
                 ev.cycle >= lastCheckCycle + cfg.interval)
            runChecks(ev.cycle);
    }
}

std::int64_t
InvariantEngine::mshrOutstanding(PuId pu) const
{
    return pu < mshrPerPu.size() ? mshrPerPu[pu] : 0;
}

void
InvariantEngine::noteFindings(std::size_t before)
{
    if (onViolation) {
        const auto &list = report_.findings();
        for (std::size_t i = before; i < list.size(); ++i)
            onViolation(list[i]);
    }
    if (cfg.abortOnViolation && report_.findings().size() > before) {
        panic("invariant violation detected:\n%s",
              report_.format().c_str());
    }
}

InvariantReport
InvariantEngine::probe(std::size_t max_findings)
{
    InvariantReport scratch(max_findings);
    inCheck = true;
    ++nProbes;
    for (auto &c : checkers)
        c->check(*this, scratch);
    inCheck = false;
    return scratch;
}

std::vector<InvariantFinding>
InvariantEngine::consumeFindings()
{
    std::vector<InvariantFinding> out(report_.findings());
    nConsumed += out.size();
    report_.clearFindings();
    return out;
}

void
InvariantEngine::runChecks(Cycle now)
{
    // Checkers may walk components that themselves emit events;
    // guard against recursive anchoring.
    inCheck = true;
    lastCheckCycle = now;
    ++nChecks;
    const std::size_t before = report_.findings().size();
    for (auto &c : checkers)
        c->check(*this, report_);
    inCheck = false;
    noteFindings(before);
}

void
InvariantEngine::runFinalChecks()
{
    inCheck = true;
    ++nChecks;
    const std::size_t before = report_.findings().size();
    for (auto &c : checkers)
        c->checkFinal(*this, report_);
    inCheck = false;
    noteFindings(before);
}

void
InvariantEngine::flush()
{
    runFinalChecks();
    if (downstream)
        downstream->flush();
}

StatSet
InvariantEngine::stats() const
{
    StatSet s;
    s.addCounter("checks_run", nChecks);
    s.addCounter("probes_run", nProbes);
    s.addCounter("findings", report_.flagged());
    s.addCounter("findings_consumed", nConsumed);
    s.addCounter("bus_requests_seen", nBusRequests);
    s.addCounter("bus_grants_seen", nBusGrants);
    s.addCounter("bus_nacks_seen", nBusNacks);
    return s;
}

} // namespace svc
