/**
 * @file
 * Signal-robust POSIX I/O helpers. The process-isolated worker
 * backend (service/process_worker.hh) makes the daemon a real UNIX
 * parent: children die, get reaped, and deliver signals at
 * arbitrary points, so every raw read/write/fwrite loop in the
 * durability paths must tolerate EINTR short transfers instead of
 * misreporting them as I/O failures. These helpers centralize that
 * discipline:
 *
 *   - fwriteAll/freadSome  stdio transfers that resume after EINTR
 *   - writeFdAll/readFdSome  fd transfers with the same contract
 *   - fsyncRetry           fsync(2) retried through EINTR
 *   - fsyncParentDir       fsync the directory holding a path, the
 *                          missing half of rename durability: an
 *                          fsync'd file published with rename(2) can
 *                          still be lost on crash until the parent
 *                          directory's entry is durable
 *   - ignoreSigpipe        a dead pipe reader must surface as EPIPE
 *                          from write(2), not kill the daemon
 *
 * Error model: no exceptions; boolean results, errno preserved for
 * the caller's structured message.
 */

#ifndef SVC_COMMON_POSIX_IO_HH
#define SVC_COMMON_POSIX_IO_HH

#include <cstdio>
#include <string>

namespace svc
{

/** Write all @p n bytes to @p f, resuming after EINTR-shortened
 *  fwrite calls. @return false on a genuine write error. */
bool fwriteAll(std::FILE *f, const void *data, std::size_t n);

/**
 * Read up to @p n bytes from @p f into @p out, resuming after
 * EINTR. Sets @p got to the bytes read (0 at EOF). @return false
 * only on a genuine read error.
 */
bool freadSome(std::FILE *f, void *out, std::size_t n,
               std::size_t &got);

/** Write all @p n bytes to fd, restarting on EINTR (and on short
 *  writes). @return false on error (errno holds the cause). */
bool writeFdAll(int fd, const void *data, std::size_t n);

/**
 * Read up to @p n bytes from fd, restarting on EINTR. Sets @p got
 * (0 at EOF). @return false on error (errno holds the cause).
 */
bool readFdSome(int fd, void *out, std::size_t n, std::size_t &got);

/** fsync(2) retried through EINTR. @return false on error. */
bool fsyncRetry(int fd);

/**
 * fsync the directory containing @p path ("." when @p path has no
 * directory component), making a just-renamed entry durable.
 * @return false with a structured message on failure.
 */
bool fsyncParentDir(const std::string &path, std::string &error);

/** Ignore SIGPIPE process-wide (idempotent). */
void ignoreSigpipe();

} // namespace svc

#endif // SVC_COMMON_POSIX_IO_HH
