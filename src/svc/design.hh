/**
 * @file
 * Configuration of the Speculative Versioning Cache, including the
 * paper's design progression (section 3): Base, EC (efficient
 * commits), ECS (efficient commits + squashes), HR (hit-rate /
 * snarfing), RL (realistic line size / sub-blocking) and Final
 * (hybrid update-invalidate). Each step is a feature flag so the
 * ablation benches can isolate individual mechanisms.
 */

#ifndef SVC_SVC_DESIGN_HH
#define SVC_SVC_DESIGN_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace svc
{

/** The paper's named design points (section 3.3 road map). */
enum class SvcDesign
{
    Base,  ///< section 3.2: eager commit flush, squash flushes all
    EC,    ///< section 3.4: commit bit + stale bit, lazy write-backs
    ECS,   ///< section 3.5: + architectural bit, efficient squashes
    HR,    ///< section 3.6: + snarfing
    RL,    ///< section 3.7: + sub-block (versioning-block) masks
    Final, ///< section 3.8: + hybrid update-invalidate protocol
};

/** @return a printable name for @p design. */
const char *svcDesignName(SvcDesign design);

/** All SVC parameters: geometry, feature flags, and timing. */
struct SvcConfig
{
    // ---- Geometry (paper section 4.2 defaults) ----
    unsigned numPus = 4;
    std::size_t cacheBytes = 8 * 1024; ///< per-PU private L1
    unsigned assoc = 4;
    unsigned lineBytes = 16;           ///< address block size
    /**
     * Versioning-block size: the granularity of the per-line L/S/V
     * masks (paper section 3.7). Equal to lineBytes reproduces the
     * pre-RL designs (whole-line versioning); 1 gives the paper's
     * byte-level disambiguation.
     */
    unsigned versioningBytes = 1;

    // ---- Design-progression feature flags ----
    /** EC+: commit sets the C bit; write-backs become lazy. */
    bool lazyCommit = true;
    /** EC+: maintain the sTale bit; reuse non-stale passive lines. */
    bool staleBit = true;
    /** ECS+: maintain the Architectural bit; squashes retain
     *  architectural lines. */
    bool archBit = true;
    /** HR+: caches snarf compatible versions off the bus. */
    bool snarfing = true;
    /** Final: update (rather than invalidate) affected copies. */
    bool hybridUpdate = true;
    /**
     * Optional optimization of section 3.8.1's final paragraph:
     * a passive dirty line flushed on a bus request is retained as
     * a clean copy (its data now equals memory) instead of being
     * invalidated, reducing write-back refetch traffic.
     */
    bool retainFlushedDirty = false;

    // ---- Timing (paper section 4.2) ----
    Cycle hitLatency = 1;
    Cycle missPenalty = 10;       ///< next-level memory supply
    Cycle busTransferCycles = 3;  ///< typical bus transaction
    Cycle busFlushExtra = 1;      ///< extra cycle to flush a
                                  ///< committed version to memory
    unsigned numMshrs = 8;
    unsigned mshrTargets = 4;
    unsigned wbBufEntries = 8;

    /** Diagnostics: record per-line next-level miss counts. */
    bool trackMissMap = false;

    /** @return the number of versioning blocks per line. */
    unsigned
    blocksPerLine() const
    {
        return lineBytes / versioningBytes;
    }
};

/**
 * @return the configuration for one of the paper's design points,
 * starting from @p base geometry/timing.
 */
SvcConfig makeDesign(SvcDesign design, SvcConfig base = SvcConfig{});

} // namespace svc

#endif // SVC_SVC_DESIGN_HH
