/**
 * @file
 * Deliberate protocol-state corruption for fault-injection tests:
 * forge a VOL pointer, set an illegal mask bit, or flip a byte of a
 * clean copy. Each corruption produces a state the invariant engine
 * (svc/invariants.hh) must detect and report with a structured
 * diagnostic — the test harness for "corruption is flagged, never
 * silent UB".
 *
 * The corruptor draws its choices from the FaultInjector's seeded
 * RNG, so a corruption campaign is exactly reproducible from the
 * fault seed.
 */

#ifndef SVC_SVC_CORRUPTOR_HH
#define SVC_SVC_CORRUPTOR_HH

#include <string>

#include "mem/fault_injector.hh"
#include "svc/protocol.hh"

namespace svc
{

/** What a corrupt() call actually did (for test assertions). */
struct CorruptionResult
{
    /** False when no resident state was eligible for the kind. */
    bool injected = false;
    PuId pu = kNoPu;
    Addr addr = kNoAddr;
    /** Human-readable description of the mutation. */
    std::string note;
};

/** Mutates live SvcProtocol state (friend access) on demand. */
class SvcCorruptor
{
  public:
    SvcCorruptor(SvcProtocol &protocol, FaultInjector &injector)
        : proto(protocol), faults(injector)
    {}

    /**
     * Apply one corruption of @p kind (one of CorruptVolPointer,
     * CorruptMask, CorruptData, CorruptVolCache) to a randomly
     * chosen resident line.
     */
    CorruptionResult corrupt(FaultKind kind);

  private:
    CorruptionResult corruptVolPointer();
    CorruptionResult corruptMask();
    CorruptionResult corruptData();
    CorruptionResult corruptVolCache();

    SvcProtocol &proto;
    FaultInjector &faults;
};

} // namespace svc

#endif // SVC_SVC_CORRUPTOR_HH
