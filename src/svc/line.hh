/**
 * @file
 * State of one SVC cache line (paper figure 16, extended to the RL
 * design's per-versioning-block masks). A line carries:
 *
 *  - V: per-versioning-block valid mask (sector-cache style; a
 *       whole-line design simply has one block per line),
 *  - S: per-block store mask (this cache holds a *version* of the
 *       blocks whose S bit is set),
 *  - L: per-block load mask (use-before-definition recording for
 *       memory-dependence violation detection),
 *  - C: commit bit (EC design) — set lazily when the task commits,
 *  - T: stale bit (EC design) — reset iff this line is (a copy of)
 *       the most recent version,
 *  - A: architectural bit (ECS design) — set iff the data came from
 *       memory or the head task,
 *  - a VOL pointer naming the PU with the next copy/version.
 */

#ifndef SVC_SVC_LINE_HH
#define SVC_SVC_LINE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace svc
{

/** Maximum supported address-block (line) size in bytes. */
inline constexpr unsigned kMaxLineBytes = 64;

/** Per-line SVC state. Stored (and handed out) by SvcLineStore. */
struct SvcLine
{
    /** Per-versioning-block valid-data mask. */
    std::uint64_t vMask = 0;
    /** Per-versioning-block store mask (version ownership). */
    std::uint64_t sMask = 0;
    /** Per-versioning-block load (use-before-def) mask. */
    std::uint64_t lMask = 0;
    /** Commit bit: the creating task has committed. */
    bool commit = false;
    /** sTale bit: a newer version exists (hint only). */
    bool stale = false;
    /** Architectural bit: data supplied by memory or head task. */
    bool arch = false;
    /**
     * Exclusivity tracking (the X bit the paper mentions in section
     * 3.8.1): set when a later task may hold a copy derived from
     * this line's version. A store may complete locally (cache hit)
     * only while the bit is clear; otherwise it must issue a
     * BusWrite so stale copies are invalidated or updated and
     * memory-dependence violations are detected.
     */
    bool shared = false;
    /** VOL pointer: PU holding the next copy/version, or kNoPu. */
    PuId nextPu = kNoPu;
    /**
     * Simulator-only shadow of the creating/using task's sequence
     * number, used exclusively by debug invariant checks — the
     * modeled hardware never stores task numbers (paper 3.2).
     */
    TaskSeq debugSeq = kNoTask;
    /** Cached data bytes (first lineBytes entries are meaningful). */
    std::array<std::uint8_t, kMaxLineBytes> data{};

    /** @return true if this line holds any version data. */
    bool isDirty() const { return sMask != 0; }

    /** @return true if the line is passive (committed). */
    bool isPassive() const { return commit; }

    /** @return true if the line is active (uncommitted). */
    bool isActive() const { return !commit; }
};

} // namespace svc

#endif // SVC_SVC_LINE_HH
