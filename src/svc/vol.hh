/**
 * @file
 * The Version Ordering List (paper section 2.3): the ordered set of
 * copies/versions of one line, distributed across the private L1s
 * as explicit per-line PU pointers. The Version Control Logic
 * reconstructs the list from snooped line states on every bus
 * request; this file implements that reconstruction plus pointer
 * rewriting and stale-bit maintenance.
 *
 * Ordering rules (derived from the paper's design):
 *  - committed (passive) entries precede all uncommitted (active)
 *    entries, and keep their relative order via the pointer chain;
 *  - active entries are ordered by the program order of the tasks
 *    currently assigned to their PUs (the VCL receives this "task
 *    assignment information" from the sequencer, figure 5);
 *  - after a squash, dangling pointers are ignored and repaired on
 *    the next access (paper section 3.5, figure 17).
 *
 * The list is a class template over the line's constness so the
 * protocol's mutating paths (Vol: rewritePointers, stale-bit
 * recomputation) and the read-only query paths (ConstVol: debug
 * dumps, invariant checkers, the cross-validation rebuild) share
 * one reconstruction algorithm without const_cast. Node storage is
 * an InlineVec sized for the common PU counts, so reconstructing or
 * copying a VOL performs no heap allocation on the snoop hot path.
 */

#ifndef SVC_SVC_VOL_HH
#define SVC_SVC_VOL_HH

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "common/inline_vec.hh"
#include "common/types.hh"
#include "svc/line.hh"

namespace svc
{

/** Inline node capacity: covers numPus <= 8 without heap spill. */
inline constexpr std::size_t kVolInlineNodes = 8;

/** One entry of a reconstructed VOL. */
template <typename LineT>
struct BasicVolNode
{
    PuId pu = kNoPu;
    LineT *line = nullptr;
    /** Task seq of the PU's current task; kNoTask for passive. */
    TaskSeq seq = kNoTask;

    bool
    operator==(const BasicVolNode &o) const
    {
        return pu == o.pu && line == o.line && seq == o.seq;
    }
};

/** A reconstructed, ordered Version Ordering List for one line. */
template <typename LineT>
class BasicVol
{
  public:
    using Node = BasicVolNode<LineT>;
    using NodeVec = InlineVec<Node, kVolInlineNodes>;

    /**
     * Reconstruct the VOL from the snooped lines of every cache.
     *
     * @param in one entry per cache holding the line (any order);
     *        seq must be the PU's current task for active lines.
     * @return nodes ordered oldest-to-newest.
     */
    static BasicVol
    build(NodeVec in)
    {
        BasicVol vol;

        // Partition into passive (committed) and active entries.
        NodeVec passive, active;
        for (auto &n : in) {
            assert(n.line != nullptr);
            (n.line->isPassive() ? passive : active).push_back(n);
        }

        // Order the passive prefix by walking the surviving pointer
        // chain. Segment starts are passive entries no other passive
        // entry points to; within a segment we follow nextPu.
        // Multiple segments can only arise when a middle entry left
        // the passive set (e.g. a non-stale copy was locally
        // reused); such orphan segments contain only copies, whose
        // relative order is immaterial — we keep determinism by
        // starting at the lowest PU.
        NodeVec ordered_passive;
        if (!passive.empty()) {
            std::sort(passive.begin(), passive.end(),
                      [](const Node &a, const Node &b) {
                          return a.pu < b.pu;
                      });
            auto member = [&](PuId pu) -> Node * {
                for (auto &n : passive) {
                    if (n.pu == pu)
                        return &n;
                }
                return nullptr;
            };
            InlineVec<std::uint8_t, kVolInlineNodes> pointed, visited;
            for (std::size_t i = 0; i < passive.size(); ++i) {
                pointed.push_back(0);
                visited.push_back(0);
            }
            for (const auto &n : passive) {
                for (std::size_t i = 0; i < passive.size(); ++i) {
                    if (passive[i].pu == n.line->nextPu)
                        pointed[i] = 1;
                }
            }
            for (std::size_t start = 0; start < passive.size();
                 ++start) {
                if (pointed[start] || visited[start])
                    continue;
                // Walk this segment.
                Node *cur = &passive[start];
                while (cur) {
                    const std::size_t idx =
                        static_cast<std::size_t>(cur -
                                                 passive.begin());
                    if (visited[idx])
                        break; // defensive: never loop
                    visited[idx] = 1;
                    ordered_passive.push_back(*cur);
                    cur = member(cur->line->nextPu);
                }
            }
            // Entries only reachable through a cycle (possible after
            // a squash left inconsistent pointers) are appended; they
            // can only be copies.
            for (std::size_t i = 0; i < passive.size(); ++i) {
                if (!visited[i])
                    ordered_passive.push_back(passive[i]);
            }
        }

        // Active entries are ordered by current task program order.
        std::sort(active.begin(), active.end(),
                  [](const Node &a, const Node &b) {
                      assert(a.seq != kNoTask && b.seq != kNoTask);
                      return a.seq < b.seq;
                  });

        vol.nodes = std::move(ordered_passive);
        vol.nodes.append(active.begin(), active.end());
        return vol;
    }

    const NodeVec &ordered() const { return nodes; }
    bool empty() const { return nodes.empty(); }
    std::size_t size() const { return nodes.size(); }

    /** @return index of @p pu in the list, or -1. */
    int
    indexOf(PuId pu) const
    {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (nodes[i].pu == pu)
                return static_cast<int>(i);
        }
        return -1;
    }

    /**
     * @return index of the most recent version (last node with a
     * non-empty store mask), or -1 if only copies exist.
     */
    int
    lastVersionIndex() const
    {
        for (int i = static_cast<int>(nodes.size()) - 1; i >= 0;
             --i) {
            if (nodes[i].line->isDirty())
                return i;
        }
        return -1;
    }

    /**
     * Rewrite every member line's VOL pointer to match this order
     * (the VCL "modifies the pointers in the lines accordingly",
     * paper section 3.4.1). Mutable-line instantiations only.
     */
    void
    rewritePointers() const
    {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            nodes[i].line->nextPu =
                i + 1 < nodes.size() ? nodes[i + 1].pu : kNoPu;
        }
    }

    /**
     * Re-establish the stale-bit invariant (paper section 3.4.3):
     * the most recent version and every entry after it (its copies)
     * have T reset; entries before it have T set. With no version
     * present every copy is architectural and T is reset. Mutable-
     * line instantiations only.
     */
    void
    recomputeStaleBits() const
    {
        const int last_version = lastVersionIndex();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            nodes[i].line->stale =
                last_version >= 0 &&
                static_cast<int>(i) < last_version;
        }
    }

    /** Remove the node for @p pu, if present. */
    void
    erase(PuId pu)
    {
        const int idx = indexOf(pu);
        if (idx >= 0)
            nodes.eraseAt(static_cast<std::size_t>(idx));
    }

  private:
    NodeVec nodes;
};

/** The protocol's mutating VOL (rewrites pointers / stale bits). */
using Vol = BasicVol<SvcLine>;
using VolNode = BasicVolNode<SvcLine>;

/** Read-only VOL for const query paths (dumps, checkers). */
using ConstVol = BasicVol<const SvcLine>;
using ConstVolNode = BasicVolNode<const SvcLine>;

} // namespace svc

#endif // SVC_SVC_VOL_HH
