/**
 * @file
 * The Version Ordering List (paper section 2.3): the ordered set of
 * copies/versions of one line, distributed across the private L1s
 * as explicit per-line PU pointers. The Version Control Logic
 * reconstructs the list from snooped line states on every bus
 * request; this file implements that reconstruction plus pointer
 * rewriting and stale-bit maintenance.
 *
 * Ordering rules (derived from the paper's design):
 *  - committed (passive) entries precede all uncommitted (active)
 *    entries, and keep their relative order via the pointer chain;
 *  - active entries are ordered by the program order of the tasks
 *    currently assigned to their PUs (the VCL receives this "task
 *    assignment information" from the sequencer, figure 5);
 *  - after a squash, dangling pointers are ignored and repaired on
 *    the next access (paper section 3.5, figure 17).
 */

#ifndef SVC_SVC_VOL_HH
#define SVC_SVC_VOL_HH

#include <vector>

#include "common/types.hh"
#include "svc/line.hh"

namespace svc
{

/** One entry of a reconstructed VOL. */
struct VolNode
{
    PuId pu = kNoPu;
    SvcLine *line = nullptr;
    /** Task seq of the PU's current task; kNoTask for passive. */
    TaskSeq seq = kNoTask;
};

/** A reconstructed, ordered Version Ordering List for one line. */
class Vol
{
  public:
    /**
     * Reconstruct the VOL from the snooped lines of every cache.
     *
     * @param nodes one entry per cache holding the line (any order);
     *        seq must be the PU's current task for active lines.
     * @return nodes ordered oldest-to-newest.
     */
    static Vol build(std::vector<VolNode> nodes);

    const std::vector<VolNode> &ordered() const { return nodes; }
    bool empty() const { return nodes.empty(); }
    std::size_t size() const { return nodes.size(); }

    /** @return index of @p pu in the list, or -1. */
    int indexOf(PuId pu) const;

    /**
     * @return index of the most recent version (last node with a
     * non-empty store mask), or -1 if only copies exist.
     */
    int lastVersionIndex() const;

    /**
     * Rewrite every member line's VOL pointer to match this order
     * (the VCL "modifies the pointers in the lines accordingly",
     * paper section 3.4.1).
     */
    void rewritePointers() const;

    /**
     * Re-establish the stale-bit invariant (paper section 3.4.3):
     * the most recent version and every entry after it (its copies)
     * have T reset; entries before it have T set. With no version
     * present every copy is architectural and T is reset.
     */
    void recomputeStaleBits() const;

    /** Remove the node for @p pu, if present. */
    void erase(PuId pu);

  private:
    std::vector<VolNode> nodes;
};

} // namespace svc

#endif // SVC_SVC_VOL_HH
