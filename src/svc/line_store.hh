/**
 * @file
 * Struct-of-arrays storage for SVC cache lines. Drop-in replacement
 * for CacheStorage<SvcLine> with the same set-associative geometry,
 * way ordering and true-LRU policy, but with the frame bookkeeping
 * split into separate contiguous arrays:
 *
 *  - tags[]      — one tag word per frame,
 *  - lruStamps[] — one LRU stamp per frame,
 *  - setOcc[]    — one 64-bit valid bitmask per *set* (bit w = way w
 *                  holds a line),
 *  - lines[]     — the SvcLine payloads themselves.
 *
 * The set occupancy mask is both the valid storage and the indexer:
 * lookups scan only occupied ways, flash operations (commit, squash,
 * flush scans) skip empty sets in one load instead of touching every
 * frame, and free-frame checks are a single mask compare. The frame
 * handle is a pointer directly into lines[], so protocol code reads
 * and writes line state with no indirection through a frame struct.
 *
 * Semantics are bit-compatible with CacheStorage<SvcLine>: victim
 * selection visits ways in the same order (first free way, else LRU
 * among non-vetoed valid ways, lowest way on stamp ties), invalidate
 * preserves the stale tag/stamp values exactly as CacheStorage does
 * (they are serialized), and iteration order over valid frames is
 * set-major / way-minor — so snapshots and traces are byte-identical
 * across the two implementations.
 */

#ifndef SVC_SVC_LINE_STORE_HH
#define SVC_SVC_LINE_STORE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/intmath.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "svc/line.hh"

namespace svc
{

/** Set-associative SoA storage for SvcLine payloads. */
class SvcLineStore
{
  public:
    /** The frame handle IS the payload: no bookkeeping indirection. */
    using Frame = SvcLine;

    SvcLineStore(std::size_t size_bytes, unsigned assoc,
                 unsigned line_bytes)
        : lineBytes(line_bytes),
          ways(assoc),
          sets(size_bytes / (std::size_t{assoc} * line_bytes)),
          offsetBits(floorLog2(line_bytes)),
          indexBits(floorLog2(sets)),
          wayMask(mask(assoc)),
          lines(sets * assoc),
          tags(sets * assoc, 0),
          lruStamps(sets * assoc, 0),
          setOcc(sets, 0)
    {
        if (!isPowerOf2(line_bytes) || !isPowerOf2(assoc) ||
            !isPowerOf2(sets) || sets == 0) {
            fatal("SvcLineStore: size %zu / assoc %u / line %u "
                  "must decompose into power-of-two sets",
                  size_bytes, assoc, line_bytes);
        }
        if (assoc > 64)
            fatal("SvcLineStore: associativity %u exceeds the 64-way "
                  "occupancy-mask limit", assoc);
    }

    unsigned lineSize() const { return lineBytes; }
    unsigned associativity() const { return ways; }
    std::size_t numSets() const { return sets; }
    std::size_t numFrames() const { return lines.size(); }

    /** @return the line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return alignDown(addr, lineBytes); }

    /** @return set index for @p addr. */
    std::size_t
    setIndex(Addr addr) const
    {
        return bits(addr, offsetBits, indexBits);
    }

    /** @return tag for @p addr. */
    Addr tagOf(Addr addr) const { return addr >> (offsetBits + indexBits); }

    /** Find the valid frame holding @p addr, or nullptr. */
    SvcLine *
    find(Addr addr)
    {
        const std::size_t base = setIndex(addr) * ways;
        const Addr tag = tagOf(addr);
        std::uint64_t occ = setOcc[base / ways];
        while (occ != 0) {
            const unsigned w = std::countr_zero(occ);
            occ &= occ - 1;
            if (tags[base + w] == tag)
                return &lines[base + w];
        }
        return nullptr;
    }

    const SvcLine *
    find(Addr addr) const
    {
        return const_cast<SvcLineStore *>(this)->find(addr);
    }

    /** @return true if @p frame currently holds a line. */
    bool
    frameValid(const SvcLine &frame) const
    {
        const std::size_t idx = indexOf(frame);
        return (setOcc[idx / ways] >> (idx % ways)) & 1;
    }

    /** Mark @p frame most recently used. */
    void touch(SvcLine &frame) { lruStamps[indexOf(frame)] = ++clock; }

    /**
     * Pick a frame in @p addr's set to hold a new line: an invalid
     * frame if available, else the LRU valid frame for which
     * @p may_evict returns true. @return nullptr if every valid
     * frame is vetoed (caller must stall or choose another victim).
     */
    template <typename Pred>
    SvcLine *
    pickVictim(Addr addr, Pred &&may_evict)
    {
        const std::size_t set = setIndex(addr);
        const std::size_t base = set * ways;
        const std::uint64_t free = ~setOcc[set] & wayMask;
        if (free != 0)
            return &lines[base + std::countr_zero(free)];
        SvcLine *victim = nullptr;
        std::uint64_t best = 0;
        std::uint64_t occ = setOcc[set];
        while (occ != 0) {
            const unsigned w = std::countr_zero(occ);
            occ &= occ - 1;
            SvcLine &f = lines[base + w];
            if (may_evict(f) &&
                (!victim || lruStamps[base + w] < best)) {
                victim = &f;
                best = lruStamps[base + w];
            }
        }
        return victim;
    }

    /** @return true if @p addr's set has an invalid (free) frame. */
    bool
    hasFreeFrame(Addr addr) const
    {
        return (~setOcc[setIndex(addr)] & wayMask) != 0;
    }

    /**
     * Install a line for @p addr into @p frame (which must belong to
     * the right set). Resets the payload to a default-constructed
     * value and marks the frame MRU.
     */
    void
    install(SvcLine &frame, Addr addr)
    {
        const std::size_t idx = indexOf(frame);
        setOcc[idx / ways] |= std::uint64_t{1} << (idx % ways);
        tags[idx] = tagOf(addr);
        frame = SvcLine{};
        touch(frame);
    }

    /** Invalidate @p frame (tag and LRU stamp keep their values). */
    void
    invalidate(SvcLine &frame)
    {
        const std::size_t idx = indexOf(frame);
        setOcc[idx / ways] &= ~(std::uint64_t{1} << (idx % ways));
        frame = SvcLine{};
    }

    /**
     * Apply @p fn to every valid frame, set-major / way-minor (the
     * CacheStorage frame order). Empty sets cost one mask load.
     */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (std::size_t set = 0; set < sets; ++set) {
            std::uint64_t occ = setOcc[set];
            while (occ != 0) {
                const unsigned w = std::countr_zero(occ);
                occ &= occ - 1;
                fn(lines[set * ways + w]);
            }
        }
    }

    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (std::size_t set = 0; set < sets; ++set) {
            std::uint64_t occ = setOcc[set];
            while (occ != 0) {
                const unsigned w = std::countr_zero(occ);
                occ &= occ - 1;
                fn(static_cast<const SvcLine &>(
                    lines[set * ways + w]));
            }
        }
    }

    /**
     * Reconstruct the full line-aligned address of @p frame (used
     * for write-backs of victims and flash-scan callbacks).
     */
    Addr
    frameAddr(const SvcLine &frame) const
    {
        const std::size_t idx = indexOf(frame);
        return (tags[idx] << (offsetBits + indexBits)) |
               (Addr{idx / ways} << offsetBits);
    }

    // ---- Checkpoint serialization (index-addressed) ----

    bool
    validAt(std::size_t i) const
    {
        return (setOcc[i / ways] >> (i % ways)) & 1;
    }
    Addr tagAt(std::size_t i) const { return tags[i]; }
    std::uint64_t lruStampAt(std::size_t i) const { return lruStamps[i]; }
    const SvcLine &lineAt(std::size_t i) const { return lines[i]; }
    SvcLine &lineAt(std::size_t i) { return lines[i]; }

    /** Restore one frame's bookkeeping (payload via lineAt). */
    void
    setFrameMeta(std::size_t i, bool valid, Addr tag,
                 std::uint64_t lru_stamp)
    {
        const std::uint64_t bit = std::uint64_t{1} << (i % ways);
        if (valid)
            setOcc[i / ways] |= bit;
        else
            setOcc[i / ways] &= ~bit;
        tags[i] = tag;
        lruStamps[i] = lru_stamp;
    }

    /** LRU clock, for checkpoint serialization only. */
    std::uint64_t lruClock() const { return clock; }
    void setLruClock(std::uint64_t c) { clock = c; }

  private:
    std::size_t
    indexOf(const SvcLine &frame) const
    {
        return static_cast<std::size_t>(&frame - lines.data());
    }

    unsigned lineBytes;
    unsigned ways;
    std::size_t sets;
    unsigned offsetBits;
    unsigned indexBits;
    std::uint64_t wayMask;
    std::uint64_t clock = 0;
    /** Payloads, set-major / way-minor; frame handles point here. */
    std::vector<SvcLine> lines;
    /** Per-frame tags (parallel to lines). */
    std::vector<Addr> tags;
    /** Per-frame LRU stamps (parallel to lines). */
    std::vector<std::uint64_t> lruStamps;
    /** Per-set way-occupancy bitmasks (valid bits). */
    std::vector<std::uint64_t> setOcc;
};

} // namespace svc

#endif // SVC_SVC_LINE_STORE_HH
