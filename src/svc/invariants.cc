#include "svc/invariants.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/intmath.hh"
#include "svc/system.hh"
#include "svc/vol.hh"

namespace svc
{

void
SvcProtocolChecker::check(const InvariantEngine &eng,
                          InvariantReport &rep)
{
    for (Addr a : proto.residentAddrs())
        checkLine(a, eng.now(), rep);
}

void
SvcLostWakeupChecker::check(const InvariantEngine &eng,
                            InvariantReport &rep)
{
    (void)eng;
    const Cycle now = sys.now();
    const Cycle wake = sys.nextWakeCycle();
    const SnoopingBus &bus = sys.bus();
    auto flag = [&](const std::string &what, Cycle claimed,
                    Cycle due) {
        rep.flag({"svc.lost_wakeup",
                  what + ": claimed wake cycle " +
                      std::to_string(claimed) +
                      " overshoots due cycle " + std::to_string(due),
                  "", now, kNoPu, kNoAddr});
    };
    if (bus.pending() > 0) {
        const Cycle due = bus.nextWakeCycle(now);
        if (wake > due)
            flag("queued bus request", wake, due);
    }
    if (!sys.writebackBuffer().empty() && bus.pending() == 0) {
        const Cycle due = std::max(now + 1, bus.freeAt());
        if (wake > due)
            flag("parked write-back on idle bus", wake, due);
    }
    if (sys.spuriousSquashArmed() && wake > now + 1)
        flag("armed spurious-squash fault draw", wake, now + 1);
    for (const ExternalSource &src : external) {
        const Cycle due = src.due();
        if (due == kNeverCycle)
            continue;
        const Cycle claimed = src.wake();
        if (claimed > due)
            flag(src.name, claimed, due);
    }
}

void
SvcProtocolChecker::checkLine(Addr line_addr, Cycle now,
                              InvariantReport &rep)
{
    const ConstVol vol = proto.snoopConst(line_addr);
    const SvcConfig &cfg = proto.cfg;
    const auto &ordered = vol.ordered();

    auto flag = [&](const char *id, const std::string &msg, PuId pu) {
        rep.flag({id, msg, proto.dumpLineState(line_addr), now, pu,
                  line_addr});
    };
    auto puStr = [](PuId pu) {
        return "pu " + std::to_string(pu);
    };

    const std::uint64_t legal = mask(cfg.blocksPerLine());
    TaskSeq min_active = kNoTask;
    for (PuId p = 0; p < cfg.numPus; ++p) {
        if (proto.tasks[p] != kNoTask)
            min_active = std::min(min_active, proto.tasks[p]);
    }

    bool seen_active = false;
    TaskSeq last_committed_seq = 0;
    unsigned nonstale_dirty = 0;
    std::size_t nonstale_idx = 0;
    std::size_t last_dirty_idx = 0;
    bool any_dirty = false;

    // -- VOL cache coherence: when the protocol holds a cached
    //    order for this line it must match the from-scratch
    //    reconstruction node for node (same PUs, same frames, same
    //    task seqs, same order) — the fast path must be
    //    indistinguishable from the paper's combinational VCL. --
    if (const Vol *cached = proto.cachedVol(line_addr)) {
        bool match = cached->size() == ordered.size();
        for (std::size_t i = 0; match && i < ordered.size(); ++i) {
            const VolNode &c = cached->ordered()[i];
            match = c.pu == ordered[i].pu &&
                    c.line == ordered[i].line &&
                    c.seq == ordered[i].seq;
        }
        if (!match) {
            std::ostringstream os;
            os << "cached VOL [";
            for (const VolNode &c : cached->ordered())
                os << " pu" << c.pu;
            os << " ] diverges from the rebuilt order [";
            for (const auto &r : ordered)
                os << " pu" << r.pu;
            os << " ]";
            flag("svc.vol_cache", os.str(), kNoPu);
        }
    }

    for (std::size_t idx = 0; idx < ordered.size(); ++idx) {
        const ConstVolNode &n = ordered[idx];
        const SvcLine &line = *n.line;

        // -- Mask well-formedness (paper fig. 16 line format). --
        if ((line.vMask | line.sMask | line.lMask) & ~legal) {
            flag("svc.mask_range",
                 puStr(n.pu) + ": mask bit beyond the line's " +
                     std::to_string(cfg.blocksPerLine()) +
                     " versioning blocks",
                 n.pu);
        }
        if (line.sMask & ~line.vMask) {
            flag("svc.s_in_v",
                 puStr(n.pu) +
                     ": store mask not within valid mask",
                 n.pu);
        }
        if (line.lMask & ~line.vMask) {
            flag("svc.l_in_v",
                 puStr(n.pu) + ": load mask not within valid mask",
                 n.pu);
        }

        // -- VOL pointer range (paper section 3.2: pointers name
        //    PUs). Dangling-but-in-range pointers are legal after a
        //    squash (fig. 17); out-of-range pointers never are. --
        if (line.nextPu != kNoPu && line.nextPu >= cfg.numPus) {
            flag("svc.vol_ptr_range",
                 puStr(n.pu) + ": VOL pointer names PU " +
                     std::to_string(line.nextPu) + " of " +
                     std::to_string(cfg.numPus),
                 n.pu);
        }

        if (line.isActive()) {
            seen_active = true;
            // -- Active lines belong to the PU's current task
            //    (sequencer task order, paper fig. 5). --
            if (n.seq == kNoTask) {
                flag("svc.active_idle_pu",
                     puStr(n.pu) + ": active line on an idle PU",
                     n.pu);
            } else if (line.debugSeq != n.seq) {
                flag("svc.active_task_order",
                     puStr(n.pu) +
                         ": active line created by task " +
                         std::to_string(line.debugSeq) +
                         " but the PU runs task " +
                         std::to_string(n.seq),
                     n.pu);
            }
        } else {
            // -- Committed entries precede active entries. --
            if (seen_active) {
                flag("svc.vol_order",
                     puStr(n.pu) +
                         ": passive entry after an active entry",
                     n.pu);
            }
            if (line.isDirty() && line.debugSeq != kNoTask) {
                // -- Committed data never comes from a task the
                //    sequencer still considers speculative. --
                if (min_active != kNoTask &&
                    line.debugSeq >= min_active) {
                    flag("svc.committed_before_head",
                         puStr(n.pu) +
                             ": committed version of task " +
                             std::to_string(line.debugSeq) +
                             " is not older than the head",
                         n.pu);
                }
                // -- Committed versions appear in program order. --
                if (line.debugSeq < last_committed_seq) {
                    flag("svc.committed_order",
                         puStr(n.pu) +
                             ": committed versions out of program "
                             "order in the VOL",
                         n.pu);
                }
                last_committed_seq = line.debugSeq;
            }
        }

        if (line.isDirty()) {
            any_dirty = true;
            last_dirty_idx = idx;
            if (!line.stale) {
                ++nonstale_dirty;
                nonstale_idx = idx;
            }
        }
    }

    // -- Single-dirty-last (paper section 3.4.3): the stale bit may
    //    conservatively mark the newest version stale (post-squash),
    //    but at most one version can claim to be the most recent,
    //    and it must be the newest dirty entry in the VOL. --
    if (nonstale_dirty > 1) {
        flag("svc.single_dirty_last",
             std::to_string(nonstale_dirty) +
                 " non-stale versions of one line",
             ordered[nonstale_idx].pu);
    } else if (nonstale_dirty == 1 && any_dirty &&
               nonstale_idx != last_dirty_idx) {
        flag("svc.single_dirty_last",
             "a non-stale version is older than another version",
             ordered[nonstale_idx].pu);
    }

    // -- Value consistency (the property that makes stale-bit reads
    //    safe, sections 3.4.3/3.8): every clean versioning block of
    //    every entry must equal the version it is a copy of, or
    //    architected memory when no version covers the block.
    //
    //    Which version that is depends on how reliable the entry's
    //    VOL position is. Active entries and passive *dirty* entries
    //    sit in reliably ordered positions (task program order /
    //    the surviving pointer chain), so their reference is the
    //    closest previous version by position. Passive pure copies
    //    can land in disconnected chain segments whose relative
    //    order is arbitrary, so position means nothing for them:
    //    a *stale* copy legally holds any historical image (skip);
    //    a *non-stale* copy is by definition a copy of the most
    //    recent version, i.e. the newest S holder anywhere in the
    //    VOL. --
    const unsigned vb_bytes = cfg.versioningBytes;
    for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
        const std::uint64_t bit = 1ull << vb;
        for (std::size_t idx = 0; idx < ordered.size(); ++idx) {
            const SvcLine &line = *ordered[idx].line;
            if (!(line.vMask & bit) || (line.sMask & bit))
                continue;
            const bool pure_copy =
                line.isPassive() && !line.isDirty();
            if (pure_copy && line.stale)
                continue;
            const std::size_t scan_from =
                pure_copy ? ordered.size() : idx;
            const std::uint8_t *want = nullptr;
            std::uint8_t mem_bytes[kMaxLineBytes];
            for (std::size_t j = scan_from; j-- > 0;) {
                if (j == idx)
                    continue;
                const SvcLine &prev = *ordered[j].line;
                if (prev.sMask & bit) {
                    want = prev.data.data() + vb * vb_bytes;
                    break;
                }
            }
            if (!want) {
                proto.mem.readBlock(line_addr + vb * vb_bytes,
                                    mem_bytes, vb_bytes);
                want = mem_bytes;
            }
            const std::uint8_t *got =
                line.data.data() + vb * vb_bytes;
            if (std::memcmp(got, want, vb_bytes) != 0) {
                flag("svc.copy_value",
                     puStr(ordered[idx].pu) + ": clean copy of vb " +
                         std::to_string(vb) +
                         " diverges from its reference version",
                     ordered[idx].pu);
            }
        }
    }
}

void
SvcSystemChecker::check(const InvariantEngine &eng,
                        InvariantReport &rep)
{
    const SvcConfig &cfg = sys.config();
    const Cycle now = eng.now();

    auto sysDump = [&]() {
        std::ostringstream os;
        os << "bus pending " << sys.bus().pending()
           << ", event balance " << eng.busOutstanding()
           << "; wb buffer " << sys.writebackBuffer().size() << "/"
           << sys.writebackBuffer().capacity();
        for (PuId p = 0; p < cfg.numPus; ++p) {
            os << "; mshr" << p << " " << sys.mshrFile(p).inFlight()
               << " (events " << eng.mshrOutstanding(p) << ")";
        }
        return os.str();
    };

    for (PuId p = 0; p < cfg.numPus; ++p) {
        const unsigned have = sys.mshrFile(p).inFlight();
        if (have > cfg.numMshrs) {
            rep.flag({"svc.mshr_bound",
                      "MSHR file exceeds its configured capacity",
                      sysDump(), now, p, kNoAddr});
        }
        if (static_cast<std::int64_t>(have) !=
            eng.mshrOutstanding(p)) {
            rep.flag({"svc.mshr_conservation",
                      "MSHR occupancy diverges from the "
                      "alloc/retire event balance",
                      sysDump(), now, p, kNoAddr});
        }
    }

    if (sys.writebackBuffer().size() >
        sys.writebackBuffer().capacity()) {
        rep.flag({"svc.wb_bound",
                  "write-back buffer exceeds its capacity",
                  sysDump(), now, kNoPu, kNoAddr});
    }

    if (eng.busOutstanding() !=
        static_cast<std::int64_t>(sys.bus().pending())) {
        rep.flag({"svc.bus_conservation",
                  "bus queue occupancy diverges from the "
                  "request/grant event balance",
                  sysDump(), now, kNoPu, kNoAddr});
    }
}

} // namespace svc
