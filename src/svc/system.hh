/**
 * @file
 * The timed Speculative Versioning Cache system: wraps the
 * functional SvcProtocol with the split-transaction snooping bus,
 * per-cache MSHRs, and the paper's latencies (1-cycle private-cache
 * hit, 3-cycle bus transaction, +1 cycle per committed-version
 * flush, 10-cycle next-level supply). Implements SpecMem so the
 * multiscalar core can run over it unchanged.
 */

#ifndef SVC_SVC_SYSTEM_HH
#define SVC_SVC_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/event_queue.hh"
#include "common/invariants.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/fault_injector.hh"
#include "mem/main_memory.hh"
#include "mem/mshr.hh"
#include "mem/writeback_buffer.hh"
#include "mem/spec_mem.hh"
#include "svc/protocol.hh"

namespace svc
{

/** Timed SVC memory system (paper section 4.2 configuration). */
class SvcSystem : public SpecMem
{
  public:
    SvcSystem(const SvcConfig &config, MainMemory &memory);

    void setViolationHandler(ViolationFn fn) override { onViolation = fn; }
    void assignTask(PuId pu, TaskSeq seq) override;
    bool issue(const MemReq &req, DoneFn done) override;
    void commitTask(PuId pu) override;
    void squashTask(PuId pu) override;
    void tick() override;
    bool busyWithRequests() const override;
    StatSet stats() const override;
    const char *name() const override { return "svc"; }

    /** Route bus, VCL, line, MSHR and task events into @p sink. */
    void attachTracer(TraceSink *sink) override;

    /** Drain lazily committed versions into main memory. */
    void finalizeMemory() override { proto.flushCommitted(); }

    /** The paper's miss ratio: next-level supplies / accesses. */
    double missRatio() const override;

    /** Direct access for tests and harnesses. */
    SvcProtocol &protocol() { return proto; }
    const SnoopingBus &bus() const { return snoopBus; }
    Cycle now() const { return currentCycle; }

    /** Read-only component access for the invariant checkers. */
    const SvcProtocol &protocol() const { return proto; }
    const MshrFile &mshrFile(PuId pu) const { return mshrs[pu]; }
    const WritebackBuffer &writebackBuffer() const { return wbBuffer; }
    const SvcConfig &config() const { return cfg; }

    /**
     * Inject timing faults: bus NACKs (with bounded retry/backoff,
     * see SnoopingBus), delayed snoop responses, write-back-buffer
     * stalls, and spurious task squashes (reported through the
     * violation handler exactly like a real dependence violation, so
     * the sequencer's recovery path handles them). Must be wired
     * before traffic starts; @p injector must outlive this system.
     */
    void attachFaultInjector(FaultInjector *injector);

    /**
     * Register this system's invariant checkers with @p engine and
     * install the engine as this system's trace sink, chaining to
     * any previously attached sink. Call before traffic starts so
     * the engine's conservation counters see every event.
     */
    void attachInvariants(InvariantEngine &engine);

    /**
     * Quiescent: no in-flight access, no queued bus request, no
     * scheduled event, no outstanding miss. The write-back buffer
     * and the bus's busyUntil are plain data and may be non-empty.
     */
    bool checkpointQuiescent() const override;
    void saveState(SnapshotWriter &w) const override;
    bool restoreState(SnapshotReader &r) override;

    /**
     * Earliest cycle tick() could do real work: a due event (hit
     * completions, MSHR fills, issue retries), bus arbitration or
     * NACK promotion, a write-back drain once the bus frees, or —
     * under fault injection — the per-cycle spurious-squash draw
     * (which must keep its exact per-cycle RNG cadence).
     */
    Cycle nextWakeCycle() const override;
    void skipCycles(Cycle n) override;

    /**
     * True while the spurious-squash fault draw is armed: a fault
     * injector and a violation handler are attached and a non-head
     * PU holds a task. The draw consumes RNG state every cycle it
     * is armed, so the event kernel must not elide any tick while
     * this holds (see nextWakeCycle()); the lost-wakeup invariant
     * checker re-checks exactly that.
     */
    bool spuriousSquashArmed() const;

  private:
    /** Handle a miss once the bus grants it; the access result is
     *  published through @p slot for the primary target. @p epoch
     *  guards against squash/reassign races; @p issued is the cycle
     *  the access entered the system (for latency stats). */
    Cycle performMiss(const MemReq &req, Cycle grant,
                      std::shared_ptr<std::optional<std::uint64_t>>
                          slot,
                      std::uint64_t epoch, Cycle issued);

    /** Re-run an access after its line was filled. */
    void finishAfterFill(const MemReq &req, DoneFn done,
                         std::uint64_t epoch);

    /** Retry a rejected/raced request every cycle until accepted
     *  (dropped if @p epoch goes stale). */
    void retryIssue(const MemReq &req, DoneFn done,
                    std::uint64_t epoch);

    /** Report violations from @p res to the sequencer. */
    void reportViolations(const AccessResult &res);

    SvcConfig cfg;
    SvcProtocol proto;
    SnoopingBus snoopBus;
    EventQueue events;
    std::vector<MshrFile> mshrs;
    /**
     * Committed-version flushes park here (the per-cache 8-entry
     * write-back buffers of section 4.2) and drain on otherwise
     * idle bus cycles; a full buffer stalls the flushing
     * transaction for the extra cycle instead. Data is written
     * through functionally at flush time — the buffer models
     * *timing* decoupling only.
     */
    WritebackBuffer wbBuffer;
    Counter nDeferredFlushes = 0;
    Counter nWbFullStalls = 0;
    /** Issue-to-fill latency of primary misses, in cycles. */
    Distribution missLatency{0.0, 64.0, 16};
    TraceSink *tracer = nullptr;
    std::vector<std::uint64_t> epochs;
    ViolationFn onViolation;
    Cycle currentCycle = 0;
    unsigned inFlight = 0;
    FaultInjector *faults = nullptr;
};

} // namespace svc

#endif // SVC_SVC_SYSTEM_HH
