#include "svc/vol.hh"

#include <algorithm>
#include <cassert>

namespace svc
{

Vol
Vol::build(std::vector<VolNode> in)
{
    Vol vol;

    // Partition into passive (committed) and active entries.
    std::vector<VolNode> passive, active;
    for (auto &n : in) {
        assert(n.line != nullptr);
        (n.line->isPassive() ? passive : active).push_back(n);
    }

    // Order the passive prefix by walking the surviving pointer
    // chain. Segment starts are passive entries no other passive
    // entry points to; within a segment we follow nextPu. Multiple
    // segments can only arise when a middle entry left the passive
    // set (e.g. a non-stale copy was locally reused); such orphan
    // segments contain only copies, whose relative order is
    // immaterial — we keep determinism by starting at the lowest PU.
    std::vector<VolNode> ordered_passive;
    if (!passive.empty()) {
        std::sort(passive.begin(), passive.end(),
                  [](const VolNode &a, const VolNode &b) {
                      return a.pu < b.pu;
                  });
        auto member = [&](PuId pu) -> VolNode * {
            for (auto &n : passive) {
                if (n.pu == pu)
                    return &n;
            }
            return nullptr;
        };
        std::vector<bool> pointed(passive.size(), false);
        for (const auto &n : passive) {
            for (std::size_t i = 0; i < passive.size(); ++i) {
                if (passive[i].pu == n.line->nextPu)
                    pointed[i] = true;
            }
        }
        std::vector<bool> visited(passive.size(), false);
        for (std::size_t start = 0; start < passive.size(); ++start) {
            if (pointed[start] || visited[start])
                continue;
            // Walk this segment.
            VolNode *cur = &passive[start];
            while (cur) {
                const std::size_t idx = cur - passive.data();
                if (visited[idx])
                    break; // defensive: never loop
                visited[idx] = true;
                ordered_passive.push_back(*cur);
                cur = member(cur->line->nextPu);
            }
        }
        // Entries only reachable through a cycle (possible after a
        // squash left inconsistent pointers) are appended; they can
        // only be copies.
        for (std::size_t i = 0; i < passive.size(); ++i) {
            if (!visited[i])
                ordered_passive.push_back(passive[i]);
        }
    }

    // Active entries are ordered by current task program order.
    std::sort(active.begin(), active.end(),
              [](const VolNode &a, const VolNode &b) {
                  assert(a.seq != kNoTask && b.seq != kNoTask);
                  return a.seq < b.seq;
              });

    vol.nodes = std::move(ordered_passive);
    vol.nodes.insert(vol.nodes.end(), active.begin(), active.end());
    return vol;
}

int
Vol::indexOf(PuId pu) const
{
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].pu == pu)
            return static_cast<int>(i);
    }
    return -1;
}

int
Vol::lastVersionIndex() const
{
    for (int i = static_cast<int>(nodes.size()) - 1; i >= 0; --i) {
        if (nodes[i].line->isDirty())
            return i;
    }
    return -1;
}

void
Vol::rewritePointers() const
{
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        nodes[i].line->nextPu =
            i + 1 < nodes.size() ? nodes[i + 1].pu : kNoPu;
    }
}

void
Vol::recomputeStaleBits() const
{
    const int last_version = lastVersionIndex();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        nodes[i].line->stale =
            last_version >= 0 && static_cast<int>(i) < last_version;
    }
}

void
Vol::erase(PuId pu)
{
    const int idx = indexOf(pu);
    if (idx >= 0)
        nodes.erase(nodes.begin() + idx);
}

} // namespace svc
