#include "svc/vol.hh"

namespace svc
{

// The reconstruction algorithm lives in the header as a template
// over the line's constness. Instantiate the protocol's mutating
// variant here so heavy users get a single copy; the read-only
// BasicVol<const SvcLine> is deliberately NOT instantiated in full —
// its rewritePointers/recomputeStaleBits must never be reached
// (they would write through const lines), and leaving the const
// variant to implicit instantiation means only the members actually
// used on const query paths are ever compiled.
template class BasicVol<SvcLine>;

} // namespace svc
