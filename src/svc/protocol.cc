#include "svc/protocol.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <set>
#include <sstream>

#include "common/intmath.hh"
#include "common/log.hh"
#include "common/snapshot.hh"
#include "svc/invariants.hh"

namespace svc
{

SvcProtocol::SvcProtocol(const SvcConfig &config, MainMemory &memory)
    : cfg(config), mem(memory), tasks(config.numPus, kNoTask),
      snoopBatch(config.numPus, nullptr)
{
    if (cfg.lineBytes > kMaxLineBytes)
        fatal("SVC line size %u exceeds the supported maximum %u",
              cfg.lineBytes, kMaxLineBytes);
    if (cfg.lineBytes % cfg.versioningBytes != 0)
        fatal("SVC line size %u is not a multiple of the versioning "
              "block size %u", cfg.lineBytes, cfg.versioningBytes);
    if (cfg.blocksPerLine() > 64)
        fatal("SVC supports at most 64 versioning blocks per line");
    caches.reserve(cfg.numPus);
    for (unsigned i = 0; i < cfg.numPus; ++i)
        caches.emplace_back(cfg.cacheBytes, cfg.assoc, cfg.lineBytes);
}

void
SvcProtocol::assignTask(PuId pu, TaskSeq seq)
{
    SVC_CHECK(*this, pu < cfg.numPus, pu, kNoAddr);
    SVC_CHECK(*this, seq != kNoTask, pu, kNoAddr);
    tasks[pu] = seq;
    dropAllVols();
    trace(TraceCat::Task, "mem_assign", pu, kNoAddr, seq);
}

bool
SvcProtocol::isHeadPu(PuId pu) const
{
    const TaskSeq mine = tasks[pu];
    if (mine == kNoTask)
        return false;
    for (PuId p = 0; p < cfg.numPus; ++p) {
        if (tasks[p] != kNoTask && tasks[p] < mine)
            return false;
    }
    return true;
}

std::uint64_t
SvcProtocol::vbMaskFor(unsigned offset, unsigned size) const
{
    const unsigned first = offset / cfg.versioningBytes;
    const unsigned last = (offset + size - 1) / cfg.versioningBytes;
    return (mask(last - first + 1)) << first;
}

bool
SvcProtocol::isExclusive(PuId pu, Addr line_addr) const
{
    for (PuId p = 0; p < cfg.numPus; ++p) {
        if (p != pu && caches[p].find(line_addr) != nullptr)
            return false;
    }
    return true;
}

const std::vector<SvcLine *> &
SvcProtocol::gatherSnoops(Addr line_addr)
{
    for (PuId pu = 0; pu < cfg.numPus; ++pu)
        snoopBatch[pu] = caches[pu].find(line_addr);
    return snoopBatch;
}

Vol
SvcProtocol::rebuildVol(Addr line_addr)
{
    Vol::NodeVec nodes;
    const auto &resp = gatherSnoops(line_addr);
    for (PuId pu = 0; pu < cfg.numPus; ++pu) {
        if (SvcLine *f = resp[pu]) {
            // Plain assert, not SVC_CHECK: the rebuild runs inside
            // the invariant checkers and the SVC_CHECK failure path
            // (dumpLineState); it must tolerate — not abort on —
            // states the checkers exist to report. The equivalent
            // property is the checker's "svc.active_idle_pu".
            assert(f->isPassive() || tasks[pu] != kNoTask);
            nodes.push_back({pu, f, tasks[pu]});
        }
    }
    return Vol::build(std::move(nodes));
}

Vol
SvcProtocol::snoop(Addr line_addr)
{
    ++nVolSnoops;
    auto it = volCache.find(line_addr);
    if (it != volCache.end()) {
        ++nVolHits;
        return it->second;
    }
    ++nVolRebuilds;
    Vol vol = rebuildVol(line_addr);
    volCache.emplace(line_addr, vol);
    return vol;
}

ConstVol
SvcProtocol::snoopConst(Addr line_addr) const
{
    ConstVol::NodeVec nodes;
    for (PuId pu = 0; pu < cfg.numPus; ++pu) {
        if (const SvcLine *f = caches[pu].find(line_addr)) {
            assert(f->isPassive() || tasks[pu] != kNoTask);
            nodes.push_back({pu, f, tasks[pu]});
        }
    }
    return ConstVol::build(std::move(nodes));
}

const Vol *
SvcProtocol::cachedVol(Addr line_addr) const
{
    const auto it = volCache.find(line_addr);
    return it != volCache.end() ? &it->second : nullptr;
}

unsigned
SvcProtocol::purgeCommitted(Addr line_addr, Vol &vol)
{
    const unsigned vbs = cfg.blocksPerLine();
    const auto &ordered = vol.ordered();

    // Find the passive prefix.
    std::size_t passive_count = 0;
    while (passive_count < ordered.size() &&
           ordered[passive_count].line->isPassive())
        ++passive_count;
    if (passive_count == 0)
        return 0;
    // The purge invalidates passive entries (membership change).
    dropVol(line_addr);

    // For each versioning block, the newest committed version is
    // the architected value: write it back. Older committed
    // versions of the block are never written back (figure 12).
    std::set<PuId> flushed_versions;
    for (unsigned vb = 0; vb < vbs; ++vb) {
        for (std::size_t i = passive_count; i-- > 0;) {
            const SvcLine &line = *ordered[i].line;
            if (line.sMask & (1ull << vb)) {
                mem.writeBlock(line_addr + vbBase(vb),
                               line.data.data() + vbBase(vb),
                               cfg.versioningBytes);
                flushed_versions.insert(ordered[i].pu);
                break;
            }
        }
    }

    // Invalidate passive dirty entries (figure 18b: a passive
    // dirty line is invalidated on a bus request whether it is
    // flushed or not) and *stale* passive clean copies. Non-stale
    // passive clean copies survive — retaining read-only data
    // across tasks is the EC design's whole point — and, being
    // copies of the most recent version, they stay consistent with
    // the post-purge memory image (so the "no versions present =>
    // nothing stale" rule remains sound).
    // The VOL nodes are the batched snoop response: invalidate the
    // purged entries through their frame handles directly instead of
    // re-probing each cache.
    std::vector<std::pair<PuId, SvcLine *>> purged;
    for (std::size_t i = 0; i < passive_count; ++i) {
        SvcLine &line = *ordered[i].line;
        if (cfg.retainFlushedDirty && line.isDirty() &&
            !line.stale &&
            flushed_versions.count(ordered[i].pu) != 0) {
            // Section 3.8.1 (final paragraph): the freshly flushed
            // most-recent committed version may be retained; its
            // data now equals memory, so it becomes an ordinary
            // non-stale clean copy.
            line.sMask = 0;
            continue;
        }
        if (line.isDirty() || line.stale)
            purged.push_back({ordered[i].pu, ordered[i].line});
    }
    for (auto [pu, f] : purged) {
        caches[pu].invalidate(*f);
        vol.erase(pu);
    }
    nFlushes += flushed_versions.size();
    if (!flushed_versions.empty()) {
        trace(TraceCat::Line, "purge", kNoPu, line_addr,
              flushed_versions.size());
    }
    return static_cast<unsigned>(flushed_versions.size());
}

void
SvcProtocol::composeImage(Addr line_addr, const Vol &vol,
                          TaskSeq req_seq, PuId req_pu,
                          std::uint64_t vb_mask, std::uint8_t *out,
                          std::uint64_t &from_cache, bool &speculative)
{
    from_cache = 0;
    speculative = false;
    const auto &ordered = vol.ordered();
    for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
        if (!(vb_mask & (1ull << vb)))
            continue;
        const SvcLine *supplier = nullptr;
        PuId supplier_pu = kNoPu;
        // Closest previous version: newest active node older than
        // the requester with the block's S bit set.
        for (std::size_t i = ordered.size(); i-- > 0;) {
            const VolNode &n = ordered[i];
            if (n.pu == req_pu || !n.line->isActive())
                continue;
            if (n.seq >= req_seq)
                continue;
            if (n.line->sMask & (1ull << vb)) {
                supplier = n.line;
                supplier_pu = n.pu;
                break;
            }
        }
        if (supplier) {
            std::copy_n(supplier->data.data() + vbBase(vb),
                        cfg.versioningBytes, out + vbBase(vb));
            from_cache |= 1ull << vb;
            if (!isHeadPu(supplier_pu))
                speculative = true;
        } else {
            mem.readBlock(line_addr + vbBase(vb), out + vbBase(vb),
                          cfg.versioningBytes);
        }
    }
}

void
SvcProtocol::castout(PuId pu, Frame &frame, AccessResult &res)
{
    const Addr victim_addr = caches[pu].frameAddr(frame);
    SvcLine &line = frame;
    // Every cast-out path removes this cache from the victim's VOL
    // (and the passive-clean path rewrites the chain around it).
    dropVol(victim_addr);
    ++nCastouts;
    trace(TraceCat::Line, "castout", pu, victim_addr, 0,
          line.isPassive() ? (line.isDirty() ? "passive_dirty"
                                             : "passive_clean")
                           : (line.isDirty() ? "active_dirty"
                                             : "active_clean"));

    if (line.isPassive()) {
        if (line.isDirty()) {
            // A committed dirty cast-out resolves *all* committed
            // versions of the line so write-back order is preserved.
            Vol vol = snoop(victim_addr);
            res.flushes += purgeCommitted(victim_addr, vol);
            res.busUsed = true;
            vol.rewritePointers();
            vol.recomputeStaleBits();
        } else {
            // Bridge the VOL chain across the departing copy so the
            // relative order of the surviving committed versions is
            // preserved (a mid-chain hole would make it ambiguous).
            // One batched snoop supplies every peer copy at once.
            const auto &resp = gatherSnoops(victim_addr);
            for (PuId p = 0; p < cfg.numPus; ++p) {
                SvcLine *pf = resp[p];
                if (p == pu || !pf)
                    continue;
                if (pf->nextPu == pu)
                    pf->nextPu = line.nextPu;
            }
            caches[pu].invalidate(frame);
        }
        return;
    }

    // Active lines can only be replaced by the head task's cache
    // (the caller verified this). A dirty active cast-out must also
    // resolve older committed versions first.
    if (line.isDirty()) {
        Vol vol = snoop(victim_addr);
        res.flushes += purgeCommitted(victim_addr, vol);
        for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
            if (line.sMask & (1ull << vb)) {
                mem.writeBlock(victim_addr + vbBase(vb),
                               line.data.data() + vbBase(vb),
                               cfg.versioningBytes);
            }
        }
        res.busUsed = true;
        ++res.flushes;
        ++nFlushes;
        caches[pu].invalidate(frame);
        vol.erase(pu);
        vol.rewritePointers();
        vol.recomputeStaleBits();
    } else {
        caches[pu].invalidate(frame);
    }
}

SvcProtocol::Frame *
SvcProtocol::obtainFrame(PuId pu, Addr line_addr, AccessResult &res)
{
    Storage &cache = caches[pu];
    if (SvcLine *f = cache.find(line_addr)) {
        cache.touch(*f);
        return f;
    }
    const bool head = isHeadPu(pu);
    SvcLine *victim = cache.pickVictim(
        line_addr, [head](const SvcLine &f) {
            return f.isPassive() || head;
        });
    if (!victim) {
        res.stalled = true;
        ++nStalls;
        trace(TraceCat::Vcl, "stall", pu, line_addr);
        return nullptr;
    }
    if (cache.frameValid(*victim))
        castout(pu, *victim, res);
    cache.install(*victim, line_addr);
    dropVol(line_addr); // the install adds a VOL member
    return victim;
}

bool
SvcProtocol::wouldHit(PuId pu, Addr addr, unsigned size,
                      bool is_store) const
{
    const Storage &cache = caches[pu];
    const Addr line_addr = cache.lineAddr(addr);
    const unsigned offset = addr & (cfg.lineBytes - 1);
    const std::uint64_t vbs = vbMaskFor(offset, size);
    const SvcLine *f = cache.find(line_addr);
    if (!f)
        return false;
    const SvcLine &line = *f;
    if (is_store) {
        if (!line.isActive() || (vbs & ~line.vMask) != 0)
            return false;
        if ((vbs & ~line.sMask) == 0 && !line.shared)
            return true;
        // X-bit fast path: the only copy in the system can take new
        // store bits locally.
        return isExclusive(pu, cache.lineAddr(addr));
    }
    if (line.isActive())
        return (vbs & ~line.vMask) == 0;
    // Passive-clean non-stale reuse (EC stale bit, figure 15).
    return cfg.staleBit && !line.isDirty() && !line.stale &&
           (vbs & ~line.vMask) == 0;
}

AccessResult
SvcProtocol::load(PuId pu, Addr addr, unsigned size)
{
    SVC_CHECK(*this, pu < cfg.numPus && tasks[pu] != kNoTask, pu,
              addr);
    SVC_CHECK(*this, size >= 1 && size <= 8, pu, addr);
    AccessResult res;
    ++nLoads;

    Storage &cache = caches[pu];
    const Addr line_addr = cache.lineAddr(addr);
    const unsigned offset = addr & (cfg.lineBytes - 1);
    // Accesses must not cross a line boundary.
    SVC_CHECK(*this, offset + size <= cfg.lineBytes, pu, line_addr);
    const std::uint64_t vbs = vbMaskFor(offset, size);

    SvcLine *f = cache.find(line_addr);
    if (f && f->isActive() && (vbs & ~f->vMask) == 0) {
        // Plain hit: the line already holds this task's image.
        SvcLine &line = *f;
        line.lMask |= vbs & ~line.sMask;
        cache.touch(*f);
        ++nHits;
        trace(TraceCat::Vcl, "load_hit", pu, line_addr);
        for (unsigned i = 0; i < size; ++i)
            res.data |= std::uint64_t{line.data[offset + i]} << (8 * i);
        return res;
    }
    if (f && f->isPassive() && cfg.staleBit && !f->isDirty() &&
        !f->stale && (vbs & ~f->vMask) == 0) {
        // Reuse a non-stale committed copy without a bus request:
        // it is (a copy of) the most recent version (figure 15).
        SvcLine &line = *f;
        dropVol(line_addr); // passive -> active without an install
        line.commit = false;
        line.arch = true;
        line.lMask = vbs;
        line.sMask = 0;
        line.shared = false;
        line.debugSeq = tasks[pu];
        cache.touch(*f);
        ++nHits;
        ++nReuseHits;
        trace(TraceCat::Vcl, "load_reuse", pu, line_addr);
        res.reused = true;
        for (unsigned i = 0; i < size; ++i)
            res.data |= std::uint64_t{line.data[offset + i]} << (8 * i);
        return res;
    }

    busRead(pu, line_addr, vbs, res);
    if (res.stalled)
        return res;
    f = cache.find(line_addr);
    SVC_CHECK(*this, f != nullptr, pu, line_addr);
    for (unsigned i = 0; i < size; ++i)
        res.data |= std::uint64_t{f->data[offset + i]} << (8 * i);
    return res;
}

void
SvcProtocol::busRead(PuId pu, Addr line_addr, std::uint64_t req_vbs,
                     AccessResult &res)
{
    const TaskSeq req_seq = tasks[pu];
    Vol vol = snoop(line_addr);

    // Classify the supply for the requested blocks before the purge
    // (a committed version that supplies data is a cache-to-cache
    // transfer even though its bytes also flow to memory, fig. 12).
    // Blocks without a buffered version can still be supplied by a
    // non-stale clean copy — a cache-to-cache transfer of read-only
    // data, which the paper does not count as a miss.
    std::uint64_t supplied_by_cache = 0;
    for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
        if (!(req_vbs & (1ull << vb)))
            continue;
        for (std::size_t i = vol.size(); i-- > 0;) {
            const VolNode &n = vol.ordered()[i];
            // The requester's own *committed* entry is a supplier
            // too (purely local data); only its active self is
            // excluded.
            if (n.line->isActive() && (n.pu == pu || n.seq >= req_seq))
                continue;
            if ((n.line->sMask & (1ull << vb)) ||
                (!n.line->stale &&
                 (n.line->vMask & (1ull << vb)))) {
                supplied_by_cache |= 1ull << vb;
                break;
            }
        }
    }

    res.busUsed = true;
    ++nBusTransactions;
    res.flushes += purgeCommitted(line_addr, vol);

    // Every older task's version may have contributed to the image
    // this fill constructs: their lines lose exclusivity (X bit),
    // so a later re-store by them must use the bus.
    for (const VolNode &n : vol.ordered()) {
        if (n.line->isActive() && n.seq < req_seq)
            n.line->shared = true;
    }

    SvcLine *frame = obtainFrame(pu, line_addr, res);
    if (!frame)
        return;
    SvcLine &line = *frame;

    const std::uint64_t fill = ~line.vMask & mask(cfg.blocksPerLine());
    std::uint64_t from_cache = 0;
    bool speculative = false;
    std::uint8_t composed[kMaxLineBytes] = {};
    composeImage(line_addr, vol, req_seq, pu, fill, composed,
                 from_cache, speculative);
    for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
        if (fill & (1ull << vb)) {
            std::copy_n(composed + vbBase(vb), cfg.versioningBytes,
                        line.data.data() + vbBase(vb));
        }
    }
    line.vMask |= fill;
    line.lMask |= req_vbs & ~line.sMask;
    if (line.commit)
        dropVol(line_addr); // passive frame converts in place
    line.commit = false;
    line.debugSeq = req_seq;
    // Architectural iff no speculative (non-head) version
    // contributed to any newly filled block (section 3.5.1).
    const bool was_merge = fill != mask(cfg.blocksPerLine());
    line.arch = (was_merge ? line.arch : true) && !speculative;

    if ((supplied_by_cache & req_vbs) != 0) {
        res.cacheSupplied = true;
        ++nCacheSupplied;
    } else {
        res.memSupplied = true;
        ++nMemSupplied;
        if (cfg.trackMissMap)
            ++missMap[line_addr];
    }
    trace(TraceCat::Vcl, "bus_read", pu, line_addr, req_vbs,
          res.memSupplied ? "mem" : "cache");

    if (cfg.snarfing)
        snarf(line_addr, pu, res);

    Vol after = snoop(line_addr);
    after.rewritePointers();
    after.recomputeStaleBits();
}

void
SvcProtocol::snarf(Addr line_addr, PuId requester, AccessResult &res)
{
    SvcLine *req_frame = caches[requester].find(line_addr);
    SVC_CHECK(*this, req_frame != nullptr, requester, line_addr);
    const TaskSeq req_seq = tasks[requester];

    Vol vol = snoop(line_addr);
    for (PuId pu = 0; pu < cfg.numPus; ++pu) {
        if (pu == requester || tasks[pu] == kNoTask)
            continue;
        if (caches[pu].find(line_addr))
            continue;
        if (!caches[pu].hasFreeFrame(line_addr))
            continue;
        // A cache may only snarf a version its task can use: no
        // version may lie strictly between it and the requester in
        // program order (section 3.6).
        const TaskSeq lo = std::min(req_seq, tasks[pu]);
        const TaskSeq hi = std::max(req_seq, tasks[pu]);
        bool blocked = false;
        for (const VolNode &n : vol.ordered()) {
            if (!n.line->isDirty() || !n.line->isActive())
                continue;
            if (n.seq > lo && n.seq < hi) {
                blocked = true;
                break;
            }
        }
        // The requester's own new version (a store snarf source)
        // must not be skipped past for older tasks.
        if (req_frame->isDirty() && tasks[pu] < req_seq)
            blocked = true;
        if (blocked)
            continue;
        AccessResult dummy;
        SvcLine *nf = obtainFrame(pu, line_addr, dummy);
        // A free frame was verified above.
        SVC_CHECK(*this, nf != nullptr, pu, line_addr);
        SvcLine &nl = *nf;
        nl.data = req_frame->data;
        nl.vMask = req_frame->vMask;
        nl.sMask = 0;
        nl.lMask = 0;
        nl.commit = false;
        // A later snarfer's image includes the requester's own
        // (speculative) version, if any.
        nl.arch = req_frame->arch &&
                  (!req_frame->isDirty() ||
                   isHeadPu(requester) || tasks[pu] < req_seq);
        nl.debugSeq = tasks[pu];
        ++nSnarfs;
        trace(TraceCat::Line, "snarf", pu, line_addr);
        // A later task now holds a copy derived from the
        // requester's image: the requester loses exclusivity.
        if (tasks[pu] > req_seq)
            req_frame->shared = true;
        (void)res;
    }
}

AccessResult
SvcProtocol::store(PuId pu, Addr addr, unsigned size,
                   std::uint64_t value)
{
    SVC_CHECK(*this, pu < cfg.numPus && tasks[pu] != kNoTask, pu,
              addr);
    SVC_CHECK(*this, size >= 1 && size <= 8, pu, addr);
    AccessResult res;
    ++nStores;

    Storage &cache = caches[pu];
    const Addr line_addr = cache.lineAddr(addr);
    const unsigned offset = addr & (cfg.lineBytes - 1);
    // Accesses must not cross a line boundary.
    SVC_CHECK(*this, offset + size <= cfg.lineBytes, pu, line_addr);
    const std::uint64_t vbs = vbMaskFor(offset, size);

    std::uint8_t bytes[8];
    for (unsigned i = 0; i < size; ++i)
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));

    SvcLine *f = cache.find(line_addr);
    if (f && f->isActive() && (vbs & ~f->vMask) == 0 &&
        (((vbs & ~f->sMask) == 0 && !f->shared) ||
         isExclusive(pu, line_addr))) {
        // Store hit: either the task already owns a non-shared
        // version of every written block, or this cache holds the
        // only copy in the system (the X bit, section 3.8.1) and
        // may extend its version locally.
        SvcLine &line = *f;
        std::uint64_t full_cover = 0;
        for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
            if (!(vbs & (1ull << vb)))
                continue;
            const unsigned base = vbBase(vb);
            if (offset <= base &&
                offset + size >= base + cfg.versioningBytes)
                full_cover |= 1ull << vb;
        }
        std::copy_n(bytes, size, line.data.data() + offset);
        const std::uint64_t newly_stored = vbs & ~line.sMask;
        line.sMask |= vbs;
        // Partially covered blocks absorb prior bytes: a use (see
        // the matching rule in busWrite()).
        line.lMask |= newly_stored & ~full_cover;
        cache.touch(*f);
        ++nHits;
        trace(TraceCat::Vcl, "store_hit", pu, line_addr);
        return res;
    }

    busWrite(pu, line_addr, vbs, offset, bytes, size, res);
    return res;
}

void
SvcProtocol::busWrite(PuId pu, Addr line_addr, std::uint64_t store_vbs,
                      unsigned offset, const std::uint8_t *bytes,
                      unsigned size, AccessResult &res)
{
    const TaskSeq req_seq = tasks[pu];
    res.busUsed = true;
    ++nBusTransactions;

    Vol vol = snoop(line_addr);

    // Pre-purge supply classification: blocks held by any version —
    // committed versions included — are supplied cache-to-cache
    // during this transaction (the purge flush doubles as the data
    // transfer, figure 13); only blocks nobody buffers come from
    // the next level of memory.
    std::uint64_t available_from_cache = 0;
    for (const VolNode &n : vol.ordered()) {
        // As for loads: committed entries supply regardless of
        // which cache (including this one) holds them.
        if (n.line->isActive() && (n.pu == pu || n.seq >= req_seq))
            continue;
        available_from_cache |= n.line->sMask;
        if (!n.line->stale)
            available_from_cache |= n.line->vMask;
    }

    res.flushes += purgeCommitted(line_addr, vol);

    // As for loads: older versions contributing to the fill lose
    // exclusivity.
    for (const VolNode &n : vol.ordered()) {
        if (n.line->isActive() && n.seq < req_seq)
            n.line->shared = true;
    }

    SvcLine *frame = obtainFrame(pu, line_addr, res);
    if (!frame)
        return;
    SvcLine &line = *frame;

    // Which blocks does this store completely overwrite? Those need
    // no fetch; partially written or untouched invalid blocks are
    // filled with the task's correct prior image (write-allocate).
    std::uint64_t full_cover = 0;
    for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
        if (!(store_vbs & (1ull << vb)))
            continue;
        const unsigned base = vbBase(vb);
        if (offset <= base &&
            offset + size >= base + cfg.versioningBytes)
            full_cover |= 1ull << vb;
    }
    const std::uint64_t fill =
        ~line.vMask & ~full_cover & mask(cfg.blocksPerLine());

    std::uint64_t from_cache = 0;
    bool speculative = false;
    std::uint8_t composed[kMaxLineBytes] = {};
    composeImage(line_addr, vol, req_seq, pu, fill, composed,
                 from_cache, speculative);
    for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
        if (fill & (1ull << vb)) {
            std::copy_n(composed + vbBase(vb), cfg.versioningBytes,
                        line.data.data() + vbBase(vb));
        }
    }
    const bool was_merge =
        (line.vMask != 0);
    line.vMask |= fill | store_vbs;
    std::copy_n(bytes, size, line.data.data() + offset);
    // A store that covers a versioning block only partially is a
    // read-modify-write of that block: the untouched bytes it
    // absorbs from the previous version are a *use*, so the L bit
    // must be set for dependence-violation detection (otherwise an
    // earlier task's later store to those bytes would be silently
    // overwritten when this — newer — version commits).
    const std::uint64_t newly_stored = store_vbs & ~line.sMask;
    line.sMask |= store_vbs;
    line.lMask |= newly_stored & ~full_cover;
    if (line.commit)
        dropVol(line_addr); // passive frame converts in place
    line.commit = false;
    line.debugSeq = req_seq;
    line.arch = (was_merge ? line.arch : true) && !speculative &&
                isHeadPu(pu);

    if (fill != 0) {
        if ((from_cache | (available_from_cache & fill)) != 0) {
            res.cacheSupplied = true;
            ++nCacheSupplied;
        } else {
            res.memSupplied = true;
            ++nMemSupplied;
            if (cfg.trackMissMap)
                ++missMap[line_addr];
        }
    }

    // Dependence-violation detection and invalidation/update of
    // later tasks' entries (paper section 3.2.3): for each written
    // block, walk the later active entries in program order; a set
    // L bit is a violation; an intervening version shields every
    // entry after it.
    std::set<PuId> violators;
    Vol actives = snoop(line_addr);
    for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
        if (!(store_vbs & (1ull << vb)))
            continue;
        for (const VolNode &n : actives.ordered()) {
            if (!n.line->isActive() || n.pu == pu)
                continue;
            if (n.seq <= req_seq)
                continue;
            SvcLine &other = *n.line;
            if (other.lMask & (1ull << vb)) {
                violators.insert(n.pu);
                // The violated line receives the invalidation
                // response as well (figure 10): the now-stale block
                // must not survive — the ECS squash retains
                // architectural-clean lines, and a stale block left
                // valid would be wrongly reused by the next task.
                if (other.sMask & (1ull << vb))
                    break; // also the next version (the squash will
                           // discard the whole dirty line): shield
                other.vMask &= ~(1ull << vb);
                other.lMask &= ~(1ull << vb);
                if (other.vMask == 0) {
                    // The VOL node is the snoop response: its frame
                    // handle needs no per-cache re-probe.
                    caches[n.pu].invalidate(other);
                    dropVol(line_addr);
                }
                continue;
            }
            if (other.sMask & (1ull << vb))
                break; // next version shields all later entries
            if (other.vMask & (1ull << vb)) {
                if (cfg.hybridUpdate) {
                    // Write-update: patch the copy in place so the
                    // consumer's next load hits (section 3.8). The
                    // copy now contains this (speculative) store,
                    // so it stops being architectural unless the
                    // storer is the non-speculative head task.
                    const unsigned lo =
                        std::max(offset, vbBase(vb));
                    const unsigned hi =
                        std::min(offset + size,
                                 vbBase(vb) + cfg.versioningBytes);
                    for (unsigned b = lo; b < hi; ++b)
                        other.data[b] = bytes[b - offset];
                    other.arch = other.arch && isHeadPu(pu);
                    ++nUpdates;
                    trace(TraceCat::Line, "update", n.pu, line_addr);
                } else {
                    // Write-invalidate: the block's copy is stale.
                    other.vMask &= ~(1ull << vb);
                    if (other.vMask == 0) {
                        caches[n.pu].invalidate(other);
                        dropVol(line_addr);
                    }
                }
            }
        }
    }
    for (PuId v : violators) {
        res.violators.push_back(v);
        trace(TraceCat::Vcl, "violation", v, line_addr, req_seq);
    }
    nViolations += violators.size();
    if (fill != 0) {
        trace(TraceCat::Vcl, "bus_write", pu, line_addr, store_vbs,
              res.memSupplied ? "mem" : "cache");
    } else {
        trace(TraceCat::Vcl, "bus_write", pu, line_addr, store_vbs,
              "upgrade");
    }

    Vol after = snoop(line_addr);
    after.rewritePointers();
    after.recomputeStaleBits();

    // The requester regains exclusivity unless a later task still
    // holds a (just-updated) copy of the line.
    bool later_copy = false;
    for (const VolNode &n : after.ordered()) {
        if (n.pu != pu && n.line->isActive() && n.seq > req_seq)
            later_copy = true;
    }
    line.shared = later_copy;
}

CommitResult
SvcProtocol::commitTask(PuId pu)
{
    SVC_CHECK(*this, pu < cfg.numPus && tasks[pu] != kNoTask, pu,
              kNoAddr);
    // Only the head task can commit.
    SVC_CHECK(*this, isHeadPu(pu), pu, kNoAddr);
    CommitResult res;
    ++nCommits;
    // The commit flips the whole cache's active lines to passive
    // and retires the task: every cached order involving them (and
    // every active seq) is suspect. Task events are rare relative
    // to bus transactions, so a global drop is cheap.
    dropAllVols();
    trace(TraceCat::Task, "mem_commit", pu, kNoAddr, tasks[pu],
          cfg.lazyCommit ? "flash" : "writeback");

    Storage &cache = caches[pu];
    if (cfg.lazyCommit) {
        // One-cycle commit: flash-set the C bit; write-backs are
        // deferred to later accesses (section 3.4).
        cache.forEachValid([&](SvcLine &f) {
            if (f.isActive()) {
                f.commit = true;
                f.lMask = 0;
            }
        });
    } else {
        // Base design: write back dirty lines immediately and
        // invalidate everything (section 3.2.4).
        cache.forEachValid([&](SvcLine &f) {
            SvcLine &line = f;
            if (line.isDirty()) {
                const Addr a = cache.frameAddr(f);
                for (unsigned vb = 0; vb < cfg.blocksPerLine(); ++vb) {
                    if (line.sMask & (1ull << vb)) {
                        mem.writeBlock(a + vbBase(vb),
                                       line.data.data() + vbBase(vb),
                                       cfg.versioningBytes);
                    }
                }
                ++res.writebacks;
                ++nEagerWritebacks;
            }
            cache.invalidate(f);
        });
        res.busUsed = res.writebacks > 0;
    }
    tasks[pu] = kNoTask;
    return res;
}

void
SvcProtocol::squashTask(PuId pu)
{
    SVC_CHECK(*this, pu < cfg.numPus, pu, kNoAddr);
    ++nSquashes;
    dropAllVols();
    trace(TraceCat::Task, "mem_squash", pu, kNoAddr, tasks[pu]);
    Storage &cache = caches[pu];
    cache.forEachValid([&](SvcLine &f) {
        SvcLine &line = f;
        if (line.isPassive() && cfg.lazyCommit)
            return; // committed state is never squashed; with lazy
                    // commits it may be the only copy of the data
        if (!cfg.archBit) {
            // Base squash: invalidate every line (section 3.2.4).
            cache.invalidate(f);
            return;
        }
        if (line.isDirty() || !line.arch) {
            // Speculative data: discard. The dangling VOL pointers
            // this leaves are repaired on the next access (fig. 17).
            cache.invalidate(f);
        } else {
            // Architectural copy: retain as a passive clean line
            // (figure 18a, Squash[Architectural]).
            line.commit = true;
            line.lMask = 0;
        }
    });
    tasks[pu] = kNoTask;
}

void
SvcProtocol::flushCommitted()
{
    std::set<Addr> addrs;
    for (PuId pu = 0; pu < cfg.numPus; ++pu) {
        caches[pu].forEachValid([&](const SvcLine &f) {
            if (f.isPassive() && f.isDirty())
                addrs.insert(caches[pu].frameAddr(f));
        });
    }
    for (Addr a : addrs) {
        Vol vol = snoop(a);
        purgeCommitted(a, vol);
        vol.rewritePointers();
        vol.recomputeStaleBits();
    }
}

RepairResult
SvcProtocol::repairLine(Addr addr, bool drop_clean_copies)
{
    const Addr line_addr = caches[0].lineAddr(addr);
    RepairResult res;
    // Any rewrite below is an order/membership change; and a forged
    // pointer may have been captured into the cached VOL itself.
    dropVol(line_addr);

    const std::uint64_t legal = mask(cfg.blocksPerLine());
    for (PuId pu = 0; pu < cfg.numPus; ++pu) {
        SvcLine *f = caches[pu].find(line_addr);
        if (!f)
            continue;
        SvcLine &line = *f;
        if (line.isActive() && tasks[pu] != kNoTask)
            res.activePus.push_back(pu);

        // Sanitize the masks: no bits beyond the line's versioning
        // blocks, S ⊆ V, L ⊆ V (the checker's svc.mask_range /
        // svc.store_implies_valid invariants).
        const std::uint64_t v0 = line.vMask, s0 = line.sMask,
                            l0 = line.lMask;
        line.vMask &= legal;
        line.sMask &= legal & line.vMask;
        line.lMask &= legal & line.vMask;
        res.maskBitsCleared += static_cast<unsigned>(
            std::popcount(v0 ^ line.vMask) +
            std::popcount(s0 ^ line.sMask) +
            std::popcount(l0 ^ line.lMask));

        // A fully sanitized-away line holds nothing: invalidate.
        // Clean copies are dropped on request — their bytes may be
        // the corrupt ones, and a clean copy is always re-fetchable.
        if (line.vMask == 0 ||
            (drop_clean_copies && !line.isDirty())) {
            caches[pu].invalidate(*f);
            ++res.cleanCopiesInvalidated;
        } else if (drop_clean_copies &&
                   (line.vMask & ~line.sMask) != 0) {
            // A dirty line sheds its *clean* blocks the same way:
            // only the version blocks it owns are irreplaceable.
            res.maskBitsCleared += static_cast<unsigned>(
                std::popcount(line.vMask & ~line.sMask));
            line.vMask = line.sMask;
            line.lMask &= line.vMask;
        }
    }

    // Rebuild the order from scratch and make the line states match
    // it — this discards any forged pointer (the VCL repair path of
    // figure 17, run eagerly instead of on the next access).
    Vol vol = rebuildVol(line_addr);
    const auto &ordered = vol.ordered();
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const PuId expect_next =
            i + 1 < ordered.size() ? ordered[i + 1].pu : kNoPu;
        if (ordered[i].line->nextPu != expect_next)
            ++res.pointersRewritten;
    }
    vol.rewritePointers();
    vol.recomputeStaleBits();

    res.anyChange = res.maskBitsCleared != 0 ||
                    res.cleanCopiesInvalidated != 0 ||
                    res.pointersRewritten != 0;
    if (res.anyChange) {
        trace(TraceCat::Line, "repair", kNoPu, line_addr,
              res.cleanCopiesInvalidated,
              drop_clean_copies ? "value" : "structural");
    }
    return res;
}

const SvcLine *
SvcProtocol::peekLine(PuId pu, Addr addr) const
{
    const Storage &cache = caches[pu];
    return cache.find(cache.lineAddr(addr));
}

std::vector<Addr>
SvcProtocol::residentAddrs() const
{
    std::set<Addr> addrs;
    for (PuId pu = 0; pu < cfg.numPus; ++pu) {
        caches[pu].forEachValid([&](const SvcLine &f) {
            addrs.insert(caches[pu].frameAddr(f));
        });
    }
    return {addrs.begin(), addrs.end()};
}

std::string
SvcProtocol::dumpLineState(Addr line_addr) const
{
    std::ostringstream os;
    os << "line 0x" << std::hex << line_addr << std::dec << " ("
       << cfg.numPus << " pus, " << cfg.blocksPerLine() << " vbs):";
    bool any = false;
    for (PuId pu = 0; pu < cfg.numPus; ++pu) {
        const auto *f = caches[pu].find(line_addr);
        if (!f)
            continue;
        any = true;
        const SvcLine &l = *f;
        os << "\npu " << pu;
        if (tasks[pu] != kNoTask)
            os << " (task " << tasks[pu] << ")";
        else
            os << " (idle)";
        os << ": V=0x" << std::hex << l.vMask << " S=0x" << l.sMask
           << " L=0x" << l.lMask << std::dec;
        os << (l.commit ? " C" : "") << (l.stale ? " T" : "")
           << (l.arch ? " A" : "") << (l.shared ? " X" : "");
        os << " next=";
        if (l.nextPu == kNoPu)
            os << "-";
        else
            os << l.nextPu;
        os << " seq=";
        if (l.debugSeq == kNoTask)
            os << "-";
        else
            os << l.debugSeq;
    }
    if (!any) {
        os << " not resident";
        return os.str();
    }
    // The reconstructed VOL order (what the VCL would compute).
    const ConstVol vol = snoopConst(line_addr);
    os << "\nVOL:";
    for (const ConstVolNode &n : vol.ordered()) {
        os << " pu" << n.pu
           << (n.line->isActive() ? "(active)" : "(passive)");
    }
    return os.str();
}

void
SvcProtocol::checkFailed(const char *expr, const char *file, int line,
                         PuId pu, Addr addr) const
{
    // Re-entrancy guard: if producing the diagnostic itself fails a
    // check, abort with the original context instead of recursing.
    static bool failing = false;
    if (failing)
        panic("SVC_CHECK failed recursively: %s at %s:%d", expr, file,
              line);
    failing = true;
    std::string dump = addr != kNoAddr
                           ? dumpLineState(addr)
                           : std::string("(no line context)");
    panic("SVC_CHECK failed: %s\n  at %s:%d (pu %u)\n%s", expr, file,
          line, pu, dump.c_str());
}

void
SvcProtocol::checkInvariants() const
{
    SvcProtocolChecker checker(*this);
    InvariantEngine eng; // only provides the cycle stamp (0: untimed)
    InvariantReport rep(8);
    checker.check(eng, rep);
    if (!rep.clean())
        panic("SVC invariant violated:\n%s", rep.format().c_str());
}

StatSet
SvcProtocol::stats() const
{
    StatSet s;
    s.addCounter("loads", nLoads);
    s.addCounter("stores", nStores);
    s.addCounter("hits", nHits);
    s.addCounter("reuse_hits", nReuseHits);
    s.addCounter("bus_transactions", nBusTransactions);
    s.addCounter("mem_supplied", nMemSupplied);
    s.addCounter("cache_supplied", nCacheSupplied);
    s.addCounter("flushes", nFlushes);
    s.addCounter("violations", nViolations);
    s.addCounter("snarfs", nSnarfs);
    s.addCounter("updates", nUpdates);
    s.addCounter("commits", nCommits);
    s.addCounter("squashes", nSquashes);
    s.addCounter("stalls", nStalls);
    s.addCounter("eager_writebacks", nEagerWritebacks);
    s.addCounter("castouts", nCastouts);
    s.addCounter("vol_snoops", nVolSnoops);
    s.addCounter("vol_hits", nVolHits);
    s.addCounter("vol_rebuilds", nVolRebuilds);
    s.addRatio("vol_hit_ratio", static_cast<double>(nVolHits),
               static_cast<double>(nVolSnoops));
    s.addRatio("miss_ratio", static_cast<double>(nMemSupplied),
               static_cast<double>(nLoads + nStores));
    return s;
}

void
SvcProtocol::saveState(SnapshotWriter &w) const
{
    w.putU64(tasks.size());
    for (TaskSeq t : tasks)
        w.putU64(t);

    const Counter *counters[] = {
        &nLoads, &nStores, &nHits, &nReuseHits, &nBusTransactions,
        &nMemSupplied, &nCacheSupplied, &nFlushes, &nViolations,
        &nSnarfs, &nUpdates, &nCommits, &nSquashes, &nStalls,
        &nEagerWritebacks, &nCastouts, &nVolSnoops, &nVolHits,
        &nVolRebuilds,
    };
    for (const Counter *c : counters)
        w.putU64(*c);

    w.putU64(missMap.size());
    for (const auto &[a, c] : missMap) {
        w.putU64(a);
        w.putU64(c);
    }

    w.putU64(caches.size());
    for (const Storage &cache : caches) {
        w.putU64(cache.lruClock());
        w.putU64(cache.numFrames());
        for (std::size_t i = 0; i < cache.numFrames(); ++i) {
            w.putBool(cache.validAt(i));
            w.putU64(cache.tagAt(i));
            w.putU64(cache.lruStampAt(i));
            const SvcLine &l = cache.lineAt(i);
            w.putU64(l.vMask);
            w.putU64(l.sMask);
            w.putU64(l.lMask);
            w.putBool(l.commit);
            w.putBool(l.stale);
            w.putBool(l.arch);
            w.putBool(l.shared);
            w.putU32(l.nextPu);
            w.putU64(l.debugSeq);
            w.putBytes(l.data.data(), cfg.lineBytes);
        }
    }
}

bool
SvcProtocol::restoreState(SnapshotReader &r)
{
    // Cached orders reference the pre-restore line states.
    dropAllVols();
    const std::uint64_t nt = r.getCount(8);
    if (!r.ok())
        return false;
    if (nt != tasks.size()) {
        r.fail("snapshot: SVC PU count mismatch");
        return false;
    }
    for (TaskSeq &t : tasks)
        t = r.getU64();

    Counter *counters[] = {
        &nLoads, &nStores, &nHits, &nReuseHits, &nBusTransactions,
        &nMemSupplied, &nCacheSupplied, &nFlushes, &nViolations,
        &nSnarfs, &nUpdates, &nCommits, &nSquashes, &nStalls,
        &nEagerWritebacks, &nCastouts, &nVolSnoops, &nVolHits,
        &nVolRebuilds,
    };
    for (Counter *c : counters)
        *c = r.getU64();

    const std::uint64_t nm = r.getCount(16);
    if (!r.ok())
        return false;
    missMap.clear();
    for (std::uint64_t i = 0; i < nm; ++i) {
        const Addr a = r.getU64();
        missMap[a] = r.getU64();
    }

    const std::uint64_t nc = r.getCount(16);
    if (nc != caches.size()) {
        r.fail("snapshot: SVC cache count mismatch");
        return false;
    }
    for (Storage &cache : caches) {
        cache.setLruClock(r.getU64());
        const std::uint64_t nf = r.getCount(25 + cfg.lineBytes);
        if (nf != cache.numFrames()) {
            r.fail("snapshot: SVC cache geometry mismatch");
            return false;
        }
        for (std::size_t i = 0; i < nf; ++i) {
            const bool valid = r.getBool();
            const Addr tag = r.getU64();
            const std::uint64_t stamp = r.getU64();
            cache.setFrameMeta(i, valid, tag, stamp);
            SvcLine &l = cache.lineAt(i);
            l = SvcLine{};
            l.vMask = r.getU64();
            l.sMask = r.getU64();
            l.lMask = r.getU64();
            l.commit = r.getBool();
            l.stale = r.getBool();
            l.arch = r.getBool();
            l.shared = r.getBool();
            l.nextPu = r.getU32();
            l.debugSeq = r.getU64();
            r.getBytes(l.data.data(), cfg.lineBytes);
        }
    }
    return r.ok();
}

} // namespace svc
