#include "svc/corruptor.hh"

#include <vector>

#include "common/intmath.hh"
#include "common/log.hh"

namespace svc
{

namespace
{

/** One mutable resident (pu, line) pair. */
struct Target
{
    PuId pu;
    Addr addr;
    SvcLine *line;
    unsigned bit; ///< versioning-block index (mask/data kinds)
};

} // namespace

CorruptionResult
SvcCorruptor::corrupt(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CorruptVolPointer:
        return corruptVolPointer();
      case FaultKind::CorruptMask:
        return corruptMask();
      case FaultKind::CorruptData:
        return corruptData();
      case FaultKind::CorruptVolCache:
        return corruptVolCache();
      default:
        panic("SvcCorruptor: %s is not a corruption kind",
              faultKindName(kind));
    }
}

CorruptionResult
SvcCorruptor::corruptVolPointer()
{
    std::vector<Target> targets;
    for (Addr a : proto.residentAddrs()) {
        for (PuId pu = 0; pu < proto.cfg.numPus; ++pu) {
            if (auto *f = proto.caches[pu].find(a))
                targets.push_back({pu, a, f, 0});
        }
    }
    CorruptionResult res;
    if (targets.empty())
        return res;
    Target &t = targets[faults.raw().below(targets.size())];
    const PuId forged = proto.cfg.numPus + 1 +
                        static_cast<PuId>(faults.raw().below(8));
    t.line->nextPu = forged;
    // The forged pointer changes the reconstructed order; drop any
    // cached VOL so the protocol rebuilds through the corruption
    // exactly as the pre-fast-path combinational VCL would.
    proto.dropVol(t.addr);
    faults.recordCorruption(FaultKind::CorruptVolPointer);
    res.injected = true;
    res.pu = t.pu;
    res.addr = t.addr;
    res.note = "forged VOL pointer to nonexistent pu " +
               std::to_string(forged);
    return res;
}

CorruptionResult
SvcCorruptor::corruptMask()
{
    const unsigned vbs = proto.cfg.blocksPerLine();
    // Preferred mutation: set an S bit on a versioning block with no
    // valid data (violates S ⊆ V). Fallback when every resident
    // line is fully valid: set a mask bit beyond the line's blocks.
    std::vector<Target> s_targets, range_targets;
    for (Addr a : proto.residentAddrs()) {
        for (PuId pu = 0; pu < proto.cfg.numPus; ++pu) {
            auto *f = proto.caches[pu].find(a);
            if (!f)
                continue;
            SvcLine &l = *f;
            const std::uint64_t invalid = ~l.vMask & mask(vbs);
            if (invalid != 0) {
                for (unsigned vb = 0; vb < vbs; ++vb) {
                    if (invalid & (1ull << vb))
                        s_targets.push_back({pu, a, &l, vb});
                }
            }
            if (vbs < 64)
                range_targets.push_back({pu, a, &l, vbs});
        }
    }
    CorruptionResult res;
    auto &targets = !s_targets.empty() ? s_targets : range_targets;
    if (targets.empty())
        return res;
    Target &t = targets[faults.raw().below(targets.size())];
    t.line->sMask |= 1ull << t.bit;
    faults.recordCorruption(FaultKind::CorruptMask);
    res.injected = true;
    res.pu = t.pu;
    res.addr = t.addr;
    res.note = "set illegal store-mask bit " + std::to_string(t.bit);
    return res;
}

CorruptionResult
SvcCorruptor::corruptData()
{
    // Flip one byte of a *clean* copy block (V set, S clear): its
    // value is fully determined by the closest previous version (or
    // memory), so the mutation must trip the value-consistency
    // check. Flipping a version's own bytes would be undetectable —
    // a version is the definition of its value.
    const unsigned vbs = proto.cfg.blocksPerLine();
    std::vector<Target> targets;
    for (Addr a : proto.residentAddrs()) {
        for (PuId pu = 0; pu < proto.cfg.numPus; ++pu) {
            auto *f = proto.caches[pu].find(a);
            if (!f)
                continue;
            SvcLine &l = *f;
            // Stale pure copies are outside the checker's reach by
            // design (their reference version is ambiguous, see
            // svc/invariants.cc), so they are not eligible targets.
            if (l.isPassive() && !l.isDirty() && l.stale)
                continue;
            const std::uint64_t clean = l.vMask & ~l.sMask;
            for (unsigned vb = 0; vb < vbs; ++vb) {
                if (clean & (1ull << vb))
                    targets.push_back({pu, a, &l, vb});
            }
        }
    }
    CorruptionResult res;
    if (targets.empty())
        return res;
    Target &t = targets[faults.raw().below(targets.size())];
    const unsigned byte =
        t.bit * proto.cfg.versioningBytes +
        static_cast<unsigned>(
            faults.raw().below(proto.cfg.versioningBytes));
    t.line->data[byte] ^= 0xFF;
    faults.recordCorruption(FaultKind::CorruptData);
    res.injected = true;
    res.pu = t.pu;
    res.addr = t.addr;
    res.note = "flipped byte " + std::to_string(byte) +
               " of clean block " + std::to_string(t.bit);
    return res;
}

CorruptionResult
SvcCorruptor::corruptVolCache()
{
    // Desynchronize the incrementally maintained VOL from the line
    // state it summarizes: warm the cache through the protocol's own
    // snoop path, then remove one node from a cached order. The
    // checker's cache-vs-rebuild cross-validation (svc.vol_cache)
    // must flag the divergence.
    std::vector<Addr> eligible;
    for (Addr a : proto.residentAddrs()) {
        if (!proto.snoop(a).empty())
            eligible.push_back(a);
    }
    CorruptionResult res;
    if (eligible.empty())
        return res;
    const Addr a = eligible[faults.raw().below(eligible.size())];
    Vol &cached = proto.volCache.at(a);
    const std::size_t victim = faults.raw().below(cached.size());
    const PuId pu = cached.ordered()[victim].pu;
    cached.erase(pu);
    faults.recordCorruption(FaultKind::CorruptVolCache);
    res.injected = true;
    res.pu = pu;
    res.addr = a;
    res.note = "dropped pu " + std::to_string(pu) +
               " from the cached VOL order";
    return res;
}

} // namespace svc
