/**
 * @file
 * SVC invariant checkers for the runtime invariant engine
 * (common/invariants.hh):
 *
 *  - SvcProtocolChecker validates the paper's cross-cache protocol
 *    properties over every resident line: mask well-formedness, VOL
 *    pointer range and ordering vs. the sequencer's task order,
 *    commit ordering, the single-dirty-last property of the stale
 *    bit, and byte-level value consistency of every clean copy
 *    against its closest previous version (the property that makes
 *    stale-bit reads safe);
 *
 *  - SvcSystemChecker validates the timed layer's conservation
 *    properties: per-PU MSHR occupancy equals the alloc/retire
 *    event balance and respects the configured bound, the
 *    write-back buffer respects its capacity, and bus queue
 *    occupancy equals the request/grant event balance.
 *
 * Soundness notes (why some "obvious" checks are absent): after a
 * squash, dangling VOL pointers and all-stale lines are *legal*
 * (paper figure 17 — repair happens on the next access), so the
 * checkers never require chain completeness or a non-stale last
 * version; they only reject states no execution can repair.
 */

#ifndef SVC_SVC_INVARIANTS_HH
#define SVC_SVC_INVARIANTS_HH

#include "common/invariants.hh"
#include "svc/protocol.hh"

namespace svc
{

class SvcSystem;

/** Cross-cache protocol state validator (see file comment). */
class SvcProtocolChecker : public InvariantChecker
{
  public:
    explicit SvcProtocolChecker(const SvcProtocol &protocol)
        : proto(protocol)
    {}

    const char *name() const override { return "svc.protocol"; }

    void check(const InvariantEngine &eng,
               InvariantReport &rep) override;

  private:
    void checkLine(Addr line_addr, Cycle now, InvariantReport &rep);

    const SvcProtocol &proto;
};

/** Timed-layer conservation validator (see file comment). */
class SvcSystemChecker : public InvariantChecker
{
  public:
    explicit SvcSystemChecker(const SvcSystem &system) : sys(system)
    {}

    const char *name() const override { return "svc.system"; }

    void check(const InvariantEngine &eng,
               InvariantReport &rep) override;

    /** Conservation must also hold drained at end of run. */
    void
    checkFinal(const InvariantEngine &eng,
               InvariantReport &rep) override
    {
        check(eng, rep);
    }

  private:
    const SvcSystem &sys;
};

} // namespace svc

#endif // SVC_SVC_INVARIANTS_HH
