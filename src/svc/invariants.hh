/**
 * @file
 * SVC invariant checkers for the runtime invariant engine
 * (common/invariants.hh):
 *
 *  - SvcProtocolChecker validates the paper's cross-cache protocol
 *    properties over every resident line: mask well-formedness, VOL
 *    pointer range and ordering vs. the sequencer's task order,
 *    commit ordering, the single-dirty-last property of the stale
 *    bit, and byte-level value consistency of every clean copy
 *    against its closest previous version (the property that makes
 *    stale-bit reads safe);
 *
 *  - SvcSystemChecker validates the timed layer's conservation
 *    properties: per-PU MSHR occupancy equals the alloc/retire
 *    event balance and respects the configured bound, the
 *    write-back buffer respects its capacity, and bus queue
 *    occupancy equals the request/grant event balance;
 *
 *  - SvcLostWakeupChecker validates the event kernel's wake
 *    contract: nextWakeCycle() must never postpone past pending
 *    work (queued bus request, parked write-back on an idle bus,
 *    armed fault schedule, or a registered external deadline such
 *    as the sequencer's forward-progress watchdog).
 *
 * Soundness notes (why some "obvious" checks are absent): after a
 * squash, dangling VOL pointers and all-stale lines are *legal*
 * (paper figure 17 — repair happens on the next access), so the
 * checkers never require chain completeness or a non-stale last
 * version; they only reject states no execution can repair.
 */

#ifndef SVC_SVC_INVARIANTS_HH
#define SVC_SVC_INVARIANTS_HH

#include "common/invariants.hh"
#include "svc/protocol.hh"

namespace svc
{

class SvcSystem;

/** Cross-cache protocol state validator (see file comment). */
class SvcProtocolChecker : public InvariantChecker
{
  public:
    explicit SvcProtocolChecker(const SvcProtocol &protocol)
        : proto(protocol)
    {}

    const char *name() const override { return "svc.protocol"; }

    void check(const InvariantEngine &eng,
               InvariantReport &rep) override;

  private:
    void checkLine(Addr line_addr, Cycle now, InvariantReport &rep);

    const SvcProtocol &proto;
};

/**
 * Lost-wakeup tripwire for the event-driven kernel. The timed
 * system's nextWakeCycle() declares the earliest cycle its tick()
 * could do real work; the event kernel elides every tick before
 * it. A wake that overshoots work already pending is a lost wakeup
 * — the run wedges, or (worse) executes the work late and silently
 * diverges from the ticked kernel. This checker re-derives the due
 * bound of each pending-work source from component state,
 * independently of the terms inside nextWakeCycle():
 *
 *  - a queued bus request (pending() > 0) is due by the bus's own
 *    declared wake;
 *  - a parked write-back with an idle bus drains on the first free
 *    bus cycle;
 *  - an armed spurious-squash fault schedule draws RNG state every
 *    cycle, so no tick may be elided while it is armed;
 *  - external sources (the sequencer's forward-progress watchdog)
 *    register their own wake/due pair via addExternalSource().
 *
 * Dropping a term from the wake computation therefore trips this
 * checker on the next anchor instead of wedging event-mode runs.
 */
class SvcLostWakeupChecker : public InvariantChecker
{
  public:
    explicit SvcLostWakeupChecker(const SvcSystem &system)
        : sys(system)
    {}

    const char *name() const override { return "svc.lost_wakeup"; }

    void check(const InvariantEngine &eng,
               InvariantReport &rep) override;

    /**
     * Register an external wake/due pair: @p wake is the claimed
     * next wake of some component above the memory system, @p due
     * the deadline by which its pending work must run (kNeverCycle
     * when idle). Checked on every anchor alongside the built-in
     * terms.
     */
    void
    addExternalSource(std::string source_name,
                      std::function<Cycle()> wake,
                      std::function<Cycle()> due)
    {
        external.push_back({std::move(source_name), std::move(wake),
                            std::move(due)});
    }

  private:
    struct ExternalSource
    {
        std::string name;
        std::function<Cycle()> wake;
        std::function<Cycle()> due;
    };

    const SvcSystem &sys;
    std::vector<ExternalSource> external;
};

/** Timed-layer conservation validator (see file comment). */
class SvcSystemChecker : public InvariantChecker
{
  public:
    explicit SvcSystemChecker(const SvcSystem &system) : sys(system)
    {}

    const char *name() const override { return "svc.system"; }

    void check(const InvariantEngine &eng,
               InvariantReport &rep) override;

    /** Conservation must also hold drained at end of run. */
    void
    checkFinal(const InvariantEngine &eng,
               InvariantReport &rep) override
    {
        check(eng, rep);
    }

  private:
    const SvcSystem &sys;
};

} // namespace svc

#endif // SVC_SVC_INVARIANTS_HH
