/**
 * @file
 * The functional core of the Speculative Versioning Cache: the L1
 * cache-controller finite state machines (paper figures 10 and 18)
 * plus the Version Control Logic (paper section 3.8.2), operating
 * over per-PU private caches and shared main memory.
 *
 * This class performs protocol state transitions instantly; the
 * timed SvcSystem wraps it with bus arbitration, MSHRs and
 * latencies. Keeping the protocol functional makes every paper
 * scenario directly unit-testable.
 */

#ifndef SVC_SVC_PROTOCOL_HH
#define SVC_SVC_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/invariants.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "mem/main_memory.hh"
#include "svc/line_store.hh"
#include "svc/design.hh"
#include "svc/line.hh"
#include "svc/vol.hh"

namespace svc
{

/** Outcome of one load/store, consumed by the timed layer & stats. */
struct AccessResult
{
    /** Loaded value (loads only). */
    std::uint64_t data = 0;
    /** The request cannot proceed (no legal victim / must retry). */
    bool stalled = false;
    /** A bus transaction was required. */
    bool busUsed = false;
    /** Data was supplied by the next level of memory — this is what
     *  the paper counts as a miss (section 4.4: cache-to-cache
     *  transfers are not misses). */
    bool memSupplied = false;
    /** Some versioning block was supplied cache-to-cache. */
    bool cacheSupplied = false;
    /** Committed versions flushed to memory during the transaction
     *  (each costs the extra bus cycle of section 4.2). */
    unsigned flushes = 0;
    /** A non-stale passive line was reused locally (EC stale bit). */
    bool reused = false;
    /** PUs whose task observed a memory-dependence violation and
     *  must be squashed (store transactions only). */
    std::vector<PuId> violators;
};

/** Outcome of a task commit. */
struct CommitResult
{
    /** Lines written back eagerly (base design only). */
    unsigned writebacks = 0;
    /** True if the commit used the bus (base design only; the EC
     *  commit is a purely local flash-set of C bits). */
    bool busUsed = false;
};

/** Outcome of a line repair (recovery stage 1). */
struct RepairResult
{
    /** Any copy of the line was modified or invalidated. */
    bool anyChange = false;
    /** Out-of-range / inconsistent mask bits cleared. */
    unsigned maskBitsCleared = 0;
    /** Clean copies invalidated (re-fetched from memory later). */
    unsigned cleanCopiesInvalidated = 0;
    /** VOL pointers that changed when the order was rebuilt. */
    unsigned pointersRewritten = 0;
    /** PUs with an active task that held a copy of this line (the
     *  squash candidates when the fault was a value fault). */
    std::vector<PuId> activePus;
};

/**
 * Functional SVC protocol engine: N private caches, the VCL, and
 * the task-assignment table the VCL consults.
 */
class SvcProtocol
{
  public:
    SvcProtocol(const SvcConfig &config, MainMemory &memory);

    // ---- Task bookkeeping (sequencer interface) ----

    /** Assign task @p seq (program-order number) to @p pu. */
    void assignTask(PuId pu, TaskSeq seq);

    /** @return the task currently on @p pu, or kNoTask. */
    TaskSeq taskOf(PuId pu) const { return tasks[pu]; }

    /** @return true iff @p pu runs the oldest (head) active task. */
    bool isHeadPu(PuId pu) const;

    // ---- Memory operations ----

    /** Load @p size bytes at @p addr on behalf of @p pu's task. */
    AccessResult load(PuId pu, Addr addr, unsigned size);

    /** Store the low @p size bytes of @p value at @p addr. */
    AccessResult store(PuId pu, Addr addr, unsigned size,
                       std::uint64_t value);

    /**
     * @return true if the given access would complete without a bus
     * transaction (used by the timed layer to classify hits).
     */
    bool wouldHit(PuId pu, Addr addr, unsigned size,
                  bool is_store) const;

    // ---- Task commit / squash ----

    /**
     * Commit @p pu's task (must be the head). EC designs flash-set
     * the C bit; the base design writes back dirty lines and
     * invalidates the cache. Clears the task assignment.
     */
    CommitResult commitTask(PuId pu);

    /**
     * Squash @p pu's task: invalidate its speculative lines (all
     * lines for the base design; non-architectural lines for ECS).
     * Clears the task assignment.
     */
    void squashTask(PuId pu);

    /**
     * Write every lazily-committed (passive dirty) version back to
     * main memory and invalidate the purged entries. Used at
     * simulation end so memory holds the full architected state;
     * equivalent to the purges later accesses would perform.
     */
    void flushCommitted();

    /**
     * Recovery stage 1 — repair one line in place, treating possible
     * corruption like a misspeculation (paper section 3.5: dangling
     * state is repaired on the next access; here we force it):
     * sanitize every copy's masks (clear bits beyond the line's
     * versioning blocks and re-establish S ⊆ V and L ⊆ V), then —
     * when @p drop_clean_copies — invalidate every *clean* copy
     * (sMask == 0), whose bytes are re-fetchable from memory or a
     * peer version, and finally rebuild the VOL from scratch,
     * rewriting pointers and stale bits. Dirty lines (versions) are
     * never touched: they may be the only copy of committed data.
     *
     * Pass @p drop_clean_copies = false for structural faults (a
     * forged VOL pointer corrupts order, not data) and true for
     * value faults; in the latter case the caller must also squash
     * the tasks in RepairResult::activePus (or all active tasks),
     * because a task may already have consumed the corrupt bytes.
     */
    RepairResult repairLine(Addr addr, bool drop_clean_copies);

    // ---- Introspection (tests, invariants, stats) ----

    /** @return the line state for @p addr in @p pu's cache. */
    const SvcLine *peekLine(PuId pu, Addr addr) const;

    /**
     * Verify protocol invariants over every resident line; panics
     * with the first finding's message and diagnostic. Implemented
     * on top of SvcProtocolChecker (svc/invariants.hh) — use the
     * checker directly for structured, non-aborting reports.
     */
    void checkInvariants() const;

    /** @return every distinct resident line address, sorted. */
    std::vector<Addr> residentAddrs() const;

    /**
     * Render the full cross-cache state of @p line_addr: each
     * cache's masks/bits plus the reconstructed VOL order — the
     * structured diagnostic attached to invariant findings and
     * SVC_CHECK failures.
     */
    std::string dumpLineState(Addr line_addr) const;

    /**
     * Reconstruct the VOL from scratch for a read-only consumer
     * (debug dumps, invariant checkers). Genuinely const: never
     * consults or populates the VOL cache, and the returned list
     * cannot rewrite pointers or stale bits.
     */
    ConstVol snoopConst(Addr line_addr) const;

    /**
     * @return the cached VOL for @p line_addr, or nullptr if the
     * line has no live cache entry. For the invariant checker's
     * cache-vs-rebuild cross-validation; never populates the cache.
     */
    const Vol *cachedVol(Addr line_addr) const;

    /**
     * SVC_CHECK failure path: logs the failed expression and the
     * offending line's VOL + state dump, then panics. Out of line
     * so the check macro stays branch-cheap.
     */
    [[noreturn]] void checkFailed(const char *expr, const char *file,
                                  int line, PuId pu,
                                  Addr addr) const;

    const SvcConfig &config() const { return cfg; }

    /**
     * Route VCL-disposition and line-state events into @p sink.
     * @p clock points at the owning timed system's cycle counter so
     * events carry cycle stamps (nullptr: events stamped 0, for
     * purely functional use).
     */
    void
    attachTracer(TraceSink *sink, const Cycle *clock = nullptr)
    {
        tracer = sink;
        clk = clock;
    }

    StatSet stats() const;

    /**
     * Serialize the full functional state: task table, every
     * cache's frames (masks, bits, VOL pointers, data) and LRU
     * clocks, counters and the miss map. Instant protocol — there
     * is never in-flight state here.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore into an identically configured protocol instance. */
    bool restoreState(SnapshotReader &r);

    // Raw counters (public for cheap harness access).
    Counter nLoads = 0;
    Counter nStores = 0;
    Counter nHits = 0;
    Counter nReuseHits = 0;
    Counter nBusTransactions = 0;
    Counter nMemSupplied = 0;  ///< paper's miss count
    Counter nCacheSupplied = 0;
    Counter nFlushes = 0;
    Counter nViolations = 0;
    Counter nSnarfs = 0;
    Counter nUpdates = 0;
    Counter nCommits = 0;
    Counter nSquashes = 0;
    Counter nStalls = 0;
    Counter nEagerWritebacks = 0;
    Counter nCastouts = 0;
    // VOL cache effectiveness (snoops = hits + rebuilds).
    Counter nVolSnoops = 0;
    Counter nVolHits = 0;
    Counter nVolRebuilds = 0;

    /** Per-line miss counts (only when cfg.trackMissMap). */
    std::map<Addr, Counter> missMap;

  private:
    using Storage = SvcLineStore;
    using Frame = Storage::Frame; ///< = SvcLine: the handle is the line

    /** @return versioning-block mask covering [offset, offset+size). */
    std::uint64_t vbMaskFor(unsigned offset, unsigned size) const;

    /** @return byte range [first, last] of versioning block @p vb. */
    unsigned vbBase(unsigned vb) const { return vb * cfg.versioningBytes; }

    /**
     * Collect a VOL snapshot for @p line_addr across all caches:
     * serve a copy of the cached list when one is live, else
     * reconstruct (rebuildVol) and cache the result. Every state
     * transition that can change the *order* — membership, the
     * passive/active partition, the pointer chain, or the task
     * table — drops the affected entry (dropVol / dropAllVols);
     * order-neutral mutations (masks, data, stale/shared bits) are
     * read through the nodes' live line pointers and need no
     * invalidation.
     */
    Vol snoop(Addr line_addr);

    /** From-scratch VOL reconstruction (the VCL's combinational
     *  path); does not touch the cache. */
    Vol rebuildVol(Addr line_addr);

    /**
     * Batched snoop: collect every cache's copy of @p line_addr in
     * one pass — the full snoop response vector a bus grant elicits
     * (all caches respond in parallel). Transaction steps consume
     * this batch instead of issuing one-at-a-time find() probes per
     * step. The returned reference is to a per-protocol scratch
     * buffer, valid until the next gather; entry p is nullptr when
     * cache p holds no copy.
     */
    const std::vector<SvcLine *> &gatherSnoops(Addr line_addr);

    /** Drop the cached VOL for one line (order-changing event). */
    void dropVol(Addr line_addr) { volCache.erase(line_addr); }

    /** Drop every cached VOL (task-table change: active order and
     *  node seqs derive from tasks[]). */
    void dropAllVols() { volCache.clear(); }

    /**
     * The X (exclusive) bit of section 3.8.1, evaluated directly:
     * true iff no other cache holds any copy of @p line_addr. An
     * exclusive holder can create or extend its version locally —
     * no copy can be stale and no L bit can exist elsewhere.
     */
    bool isExclusive(PuId pu, Addr line_addr) const;

    /**
     * Purge committed entries of @p line_addr: write the newest
     * committed bytes of each versioning block back to memory and
     * invalidate every passive line (paper sections 3.4.1/3.4.2).
     * @return number of distinct committed versions flushed.
     */
    unsigned purgeCommitted(Addr line_addr, Vol &vol);

    /**
     * Compose the memory image seen by task @p req_seq for the
     * versioning blocks in @p vb_mask: for each block, the closest
     * previous active version, else architected memory (which the
     * caller must already have purged into).
     *
     * @param[out] from_cache set per versioning block supplied by a
     *             peer cache
     * @param[out] speculative true if a non-head active version
     *             contributed (clears the A bit)
     */
    void composeImage(Addr line_addr, const Vol &vol, TaskSeq req_seq,
                      PuId req_pu, std::uint64_t vb_mask,
                      std::uint8_t *out, std::uint64_t &from_cache,
                      bool &speculative);

    /**
     * Obtain a frame of @p pu's cache for @p line_addr, evicting a
     * victim if legal (active lines only when @p pu is the head,
     * paper section 3.2.5). May perform cast-out bus work, which is
     * accumulated into @p res. @return nullptr if the request must
     * stall.
     */
    Frame *obtainFrame(PuId pu, Addr line_addr, AccessResult &res);

    /** Cast out @p frame (write-back if dirty), then invalidate. */
    void castout(PuId pu, Frame &frame, AccessResult &res);

    /** The BusRead transaction (load miss / stale reuse miss). */
    void busRead(PuId pu, Addr line_addr, std::uint64_t req_vbs,
                 AccessResult &res);

    /** The BusWrite transaction (store miss / upgrade). */
    void busWrite(PuId pu, Addr line_addr, std::uint64_t store_vbs,
                  unsigned offset, const std::uint8_t *bytes,
                  unsigned size, AccessResult &res);

    /** HR design: offer the fill to other caches (paper 3.6). */
    void snarf(Addr line_addr, PuId requester, AccessResult &res);

    /** @return the tracing cycle stamp (0 when untimed). */
    Cycle nowc() const { return clk ? *clk : 0; }

    /** Emit a trace event if a sink is attached. */
    void
    trace(TraceCat cat, const char *name, PuId pu, Addr addr,
          std::uint64_t arg = 0, const char *detail = nullptr)
    {
        if (tracer)
            tracer->emit({nowc(), 0, cat, name, pu, addr, arg, detail});
    }

    SvcConfig cfg;
    MainMemory &mem;
    std::vector<Storage> caches;
    std::vector<TaskSeq> tasks;
    /** Per-line VOL orders maintained across bus transactions. */
    std::unordered_map<Addr, Vol> volCache;
    /** gatherSnoops() scratch (one slot per cache). */
    std::vector<SvcLine *> snoopBatch;
    TraceSink *tracer = nullptr;
    const Cycle *clk = nullptr;

    /** Read-only deep inspection for the invariant checkers. */
    friend class SvcProtocolChecker;
    /** Deliberate state mutation for fault-injection tests. */
    friend class SvcCorruptor;
};

} // namespace svc

/**
 * Release-mode protocol assertion. Unlike assert(), SVC_CHECK is
 * compiled in every build type and gated by the runtime switch
 * (common/invariants.hh: runtimeChecksEnabled, SVC_CHECKS=0 env).
 * On failure it dumps the offending line's VOL + state before
 * aborting. @p proto is the SvcProtocol, @p pu/@p addr give the
 * failure context (kNoPu / kNoAddr when not applicable).
 */
#define SVC_CHECK(proto, cond, pu, addr)                              \
    do {                                                              \
        if (::svc::runtimeChecksEnabled() && !(cond)) [[unlikely]]    \
            (proto).checkFailed(#cond, __FILE__, __LINE__, (pu),      \
                                (addr));                              \
    } while (0)

#endif // SVC_SVC_PROTOCOL_HH
