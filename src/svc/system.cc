#include "svc/system.hh"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/log.hh"
#include "common/snapshot.hh"
#include "svc/invariants.hh"

namespace svc
{

SvcSystem::SvcSystem(const SvcConfig &config, MainMemory &memory)
    : cfg(config), proto(config, memory),
      epochs(config.numPus, 0),
      wbBuffer(config.wbBufEntries * config.numPus)
{
    mshrs.reserve(cfg.numPus);
    for (unsigned i = 0; i < cfg.numPus; ++i)
        mshrs.emplace_back(cfg.numMshrs, cfg.mshrTargets);
}

void
SvcSystem::attachTracer(TraceSink *sink)
{
    tracer = sink;
    snoopBus.attachTracer(sink);
    proto.attachTracer(sink, &currentCycle);
    for (PuId pu = 0; pu < cfg.numPus; ++pu)
        mshrs[pu].attachTracer(sink, &currentCycle, pu);
}

void
SvcSystem::attachFaultInjector(FaultInjector *injector)
{
    faults = injector;
    snoopBus.attachFaultInjector(injector);
}

void
SvcSystem::attachInvariants(InvariantEngine &engine)
{
    engine.addChecker(std::make_unique<SvcProtocolChecker>(proto));
    engine.addChecker(std::make_unique<SvcSystemChecker>(*this));
    engine.addChecker(
        std::make_unique<SvcLostWakeupChecker>(*this));
    // Keep any sink attached earlier: the engine tees into it.
    engine.chain(tracer);
    attachTracer(&engine);
}

void
SvcSystem::assignTask(PuId pu, TaskSeq seq)
{
    ++epochs[pu];
    proto.assignTask(pu, seq);
}

void
SvcSystem::reportViolations(const AccessResult &res)
{
    if (res.violators.empty() || !onViolation)
        return;
    // Report the oldest violating task; the sequencer squashes it
    // and everything younger (the paper's simple squash model).
    PuId oldest = res.violators.front();
    for (PuId v : res.violators) {
        if (proto.taskOf(v) < proto.taskOf(oldest))
            oldest = v;
    }
    onViolation(oldest);
}

bool
SvcSystem::issue(const MemReq &req, DoneFn done)
{
    assert(req.pu < cfg.numPus);
    if (proto.taskOf(req.pu) == kNoTask)
        panic("SVC issue from PU %u with no assigned task", req.pu);

    if (proto.wouldHit(req.pu, req.addr, req.size, req.isStore)) {
        AccessResult res =
            req.isStore
                ? proto.store(req.pu, req.addr, req.size, req.data)
                : proto.load(req.pu, req.addr, req.size);
        assert(!res.busUsed && !res.stalled);
        ++inFlight;
        events.schedule(currentCycle + cfg.hitLatency,
                        [this, done, data = res.data]() {
                            --inFlight;
                            done(data);
                        });
        return true;
    }

    // Miss: allocate an MSHR; a primary miss launches the bus
    // request and performs the access at grant time, delivering its
    // result through a slot; secondaries piggyback on the fill and
    // re-execute as hits once the line is present. Requests carry
    // the issuing task's epoch: a squash between issue and grant
    // must not let the dead access execute under a newly assigned
    // task's identity.
    const Addr line_addr = req.addr & ~Addr{cfg.lineBytes - 1};
    const std::uint64_t epoch = epochs[req.pu];
    const bool will_be_primary =
        mshrs[req.pu].find(line_addr) == nullptr;
    bool is_primary = false;
    bool ok;
    if (will_be_primary) {
        auto slot =
            std::make_shared<std::optional<std::uint64_t>>();
        ok = mshrs[req.pu].allocate(
            line_addr,
            [this, req, done, slot, epoch]() {
                if (slot->has_value()) {
                    --inFlight;
                    done(**slot);
                } else {
                    finishAfterFill(req, done, epoch);
                }
            },
            is_primary);
        if (ok) {
            assert(is_primary);
            snoopBus.request(
                {req.pu,
                 req.isStore ? BusCmd::BusWrite : BusCmd::BusRead,
                 line_addr,
                 [this, req, slot, epoch,
                  issued = currentCycle](Cycle grant) {
                     return performMiss(req, grant, slot, epoch,
                                        issued);
                 },
                 currentCycle});
        }
    } else {
        ok = mshrs[req.pu].allocate(
            line_addr,
            [this, req, done, epoch]() {
                finishAfterFill(req, done, epoch);
            },
            is_primary);
    }
    if (!ok)
        return false;
    ++inFlight;
    return true;
}

Cycle
SvcSystem::performMiss(const MemReq &req, Cycle grant,
                       std::shared_ptr<std::optional<std::uint64_t>>
                           slot,
                       std::uint64_t epoch, Cycle issued)
{
    const Addr line_addr = req.addr & ~Addr{cfg.lineBytes - 1};

    // The task may have been squashed while waiting for the bus
    // (the epoch also changes if the PU was already reassigned).
    if (proto.taskOf(req.pu) == kNoTask || epochs[req.pu] != epoch) {
        *slot = 0;
        events.schedule(grant + 1, [this, line_addr, pu = req.pu]() {
            mshrs[pu].complete(line_addr);
        });
        return 1;
    }

    AccessResult res =
        req.isStore ? proto.store(req.pu, req.addr, req.size, req.data)
                    : proto.load(req.pu, req.addr, req.size);

    if (res.stalled) {
        // No legal victim (all ways hold active lines of a
        // speculative task): retry once the head has advanced.
        snoopBus.request({req.pu,
                          req.isStore ? BusCmd::BusWrite
                                      : BusCmd::BusRead,
                          line_addr,
                          [this, req, slot, epoch, issued](Cycle g) {
                              return performMiss(req, g, slot, epoch,
                                                 issued);
                          },
                          grant});
        return 1;
    }

    reportViolations(res);

    *slot = res.data;
    // Flushed committed versions drain through the write-back
    // buffers in the background; only a full buffer serializes the
    // extra flush cycles into this transaction.
    Cycle flush_cycles = 0;
    for (unsigned f = 0; f < res.flushes; ++f) {
        // An injected stall makes the buffer behave as if full:
        // purely extra latency, never a functional change.
        if (wbBuffer.full() ||
            (faults && faults->writebackStall())) {
            flush_cycles += cfg.busFlushExtra;
            ++nWbFullStalls;
        } else {
            wbBuffer.push({line_addr, {}, 0});
            ++nDeferredFlushes;
        }
    }
    // An injected snoop-response delay stretches the transaction's
    // bus occupancy (a slow responder), again timing-only.
    const Cycle snoop_delay =
        faults ? faults->snoopResponseDelay() : Cycle{0};
    const Cycle occupancy =
        (res.busUsed ? cfg.busTransferCycles : Cycle{1}) +
        flush_cycles + snoop_delay;
    const Cycle fill_delay =
        occupancy + (res.memSupplied ? cfg.missPenalty : Cycle{0});
    missLatency.sample(
        static_cast<double>(grant + fill_delay - issued));
    events.schedule(grant + fill_delay, [this, line_addr,
                                         pu = req.pu]() {
        mshrs[pu].complete(line_addr);
    });
    return occupancy;
}

void
SvcSystem::finishAfterFill(const MemReq &req, DoneFn done,
                           std::uint64_t epoch)
{
    // The fill arrived; the original access should now hit. If the
    // task has since been squashed or replaced, deliver a dead
    // value (the LSQ discards completions from stale epochs).
    if (proto.taskOf(req.pu) == kNoTask || epochs[req.pu] != epoch) {
        --inFlight;
        done(0);
        return;
    }
    if (proto.wouldHit(req.pu, req.addr, req.size, req.isStore)) {
        AccessResult res =
            req.isStore
                ? proto.store(req.pu, req.addr, req.size, req.data)
                : proto.load(req.pu, req.addr, req.size);
        --inFlight;
        done(res.data);
        return;
    }
    // Raced with an invalidation: retry as a fresh miss. The
    // in-flight count is kept while the retry loop runs so the
    // system stays "busy" and keeps ticking.
    retryIssue(req, done, epoch);
}

void
SvcSystem::retryIssue(const MemReq &req, DoneFn done,
                      std::uint64_t epoch)
{
    events.schedule(currentCycle + 1, [this, req, done, epoch]() {
        --inFlight;
        if (epochs[req.pu] != epoch) {
            done(0); // stale request: the LSQ discards it
            return;
        }
        if (!issue(req, done)) {
            ++inFlight;
            retryIssue(req, done, epoch);
        }
    });
}

void
SvcSystem::commitTask(PuId pu)
{
    CommitResult res = proto.commitTask(pu);
    if (res.busUsed) {
        // Base design: the eager write-back burst occupies the bus
        // (the serial commit bottleneck of section 3.2.6).
        const unsigned n = res.writebacks;
        snoopBus.request({pu, BusCmd::BusWback, 0,
                          [this, n](Cycle) {
                              return Cycle{n} *
                                     (cfg.busTransferCycles +
                                      cfg.busFlushExtra);
                          },
                          currentCycle});
    }
}

void
SvcSystem::squashTask(PuId pu)
{
    ++epochs[pu];
    proto.squashTask(pu);
}

void
SvcSystem::tick()
{
    ++currentCycle;
    // Spurious squash injection: report a dependence violation on
    // the youngest non-head busy PU. The protocol state is never
    // touched here — the sequencer's normal squash/replay recovery
    // runs, which is exactly what makes the fault survivable.
    if (faults && onViolation) {
        PuId victim = kNoPu;
        for (PuId p = 0; p < cfg.numPus; ++p) {
            const TaskSeq t = proto.taskOf(p);
            if (t == kNoTask || proto.isHeadPu(p))
                continue;
            if (victim == kNoPu || t > proto.taskOf(victim))
                victim = p;
        }
        if (victim != kNoPu && faults->spuriousSquash()) {
            if (tracer) {
                tracer->emit({currentCycle, 0, TraceCat::Task,
                              "fault_squash", victim, kNoAddr,
                              proto.taskOf(victim), nullptr});
            }
            onViolation(victim);
        }
    }
    // Drain one parked write-back per idle bus cycle.
    if (!wbBuffer.empty() && !snoopBus.busy(currentCycle) &&
        snoopBus.pending() == 0) {
        wbBuffer.pop();
        snoopBus.request({0, BusCmd::BusWback, 0,
                          [this](Cycle) {
                              return cfg.busFlushExtra;
                          },
                          currentCycle});
    }
    snoopBus.tick(currentCycle);
    events.runDue(currentCycle);
}

Cycle
SvcSystem::nextWakeCycle() const
{
    Cycle wake = events.nextEventCycle();
    wake = std::min(wake, snoopBus.nextWakeCycle(currentCycle));
    // A parked write-back drains on the first idle bus cycle. The
    // buffer and pending() cannot change during elided ticks, so the
    // drain cycle is exactly when the bus frees up.
    if (!wbBuffer.empty() && snoopBus.pending() == 0) {
        wake = std::min(wake, std::max(currentCycle + 1,
                                       snoopBus.freeAt()));
    }
    // Fault injection draws the spurious-squash RNG every cycle a
    // victim exists; eliding those ticks would desynchronize the
    // deterministic fault stream from the ticked kernel. Victim
    // existence only changes inside executed ticks, so waking every
    // cycle while one exists is exact, not just conservative.
    if (spuriousSquashArmed())
        wake = std::min(wake, currentCycle + 1);
    return wake;
}

bool
SvcSystem::spuriousSquashArmed() const
{
    if (!faults || !onViolation)
        return false;
    for (PuId p = 0; p < cfg.numPus; ++p) {
        if (proto.taskOf(p) != kNoTask && !proto.isHeadPu(p))
            return true;
    }
    return false;
}

void
SvcSystem::skipCycles(Cycle n)
{
    currentCycle += n;
    snoopBus.skipCycles(n);
}

bool
SvcSystem::busyWithRequests() const
{
    return inFlight > 0 || snoopBus.pending() > 0;
}

double
SvcSystem::missRatio() const
{
    const double accesses =
        static_cast<double>(proto.nLoads + proto.nStores);
    return accesses == 0
               ? 0.0
               : static_cast<double>(proto.nMemSupplied) / accesses;
}

StatSet
SvcSystem::stats() const
{
    StatSet s;
    s.merge("protocol", proto.stats());
    s.merge("bus", snoopBus.stats());
    for (PuId pu = 0; pu < cfg.numPus; ++pu)
        s.merge("mshr" + std::to_string(pu), mshrs[pu].stats());
    s.addCounter("deferred_flushes", nDeferredFlushes);
    s.addCounter("wb_full_stalls", nWbFullStalls);
    s.add("miss_ratio", missRatio());
    s.addDistribution("miss_latency", missLatency);
    return s;
}

bool
SvcSystem::checkpointQuiescent() const
{
    if (inFlight != 0 || snoopBus.pending() != 0 || !events.empty())
        return false;
    for (const MshrFile &m : mshrs) {
        if (m.inFlight() != 0)
            return false;
    }
    return true;
}

void
SvcSystem::saveState(SnapshotWriter &w) const
{
    w.putU64(currentCycle);
    w.putU64(epochs.size());
    for (std::uint64_t e : epochs)
        w.putU64(e);
    w.putU64(nDeferredFlushes);
    w.putU64(nWbFullStalls);
    missLatency.saveState(w);
    proto.saveState(w);
    snoopBus.saveState(w);
    for (const MshrFile &m : mshrs)
        m.saveState(w);
    wbBuffer.saveState(w);
}

bool
SvcSystem::restoreState(SnapshotReader &r)
{
    if (!checkpointQuiescent()) {
        r.fail("snapshot: cannot restore into a busy SVC system");
        return false;
    }
    currentCycle = r.getU64();
    const std::uint64_t ne = r.getCount(8);
    if (ne != epochs.size()) {
        r.fail("snapshot: SVC system PU count mismatch");
        return false;
    }
    for (std::uint64_t &e : epochs)
        e = r.getU64();
    nDeferredFlushes = r.getU64();
    nWbFullStalls = r.getU64();
    if (!missLatency.restoreState(r) || !proto.restoreState(r) ||
        !snoopBus.restoreState(r)) {
        return false;
    }
    for (MshrFile &m : mshrs) {
        if (!m.restoreState(r))
            return false;
    }
    return wbBuffer.restoreState(r) && r.ok();
}

} // namespace svc
