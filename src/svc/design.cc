#include "svc/design.hh"

namespace svc
{

const char *
svcDesignName(SvcDesign design)
{
    switch (design) {
      case SvcDesign::Base:
        return "Base";
      case SvcDesign::EC:
        return "EC";
      case SvcDesign::ECS:
        return "ECS";
      case SvcDesign::HR:
        return "HR";
      case SvcDesign::RL:
        return "RL";
      case SvcDesign::Final:
        return "Final";
    }
    return "?";
}

SvcConfig
makeDesign(SvcDesign design, SvcConfig base)
{
    SvcConfig c = base;
    // Whole-line versioning for every design before RL; the RL and
    // Final designs keep whatever versioning granularity the caller
    // configured (default: byte-level disambiguation).
    switch (design) {
      case SvcDesign::Base:
        c.lazyCommit = false;
        c.staleBit = false;
        c.archBit = false;
        c.snarfing = false;
        c.hybridUpdate = false;
        c.versioningBytes = c.lineBytes;
        break;
      case SvcDesign::EC:
        c.lazyCommit = true;
        c.staleBit = true;
        c.archBit = false;
        c.snarfing = false;
        c.hybridUpdate = false;
        c.versioningBytes = c.lineBytes;
        break;
      case SvcDesign::ECS:
        c.lazyCommit = true;
        c.staleBit = true;
        c.archBit = true;
        c.snarfing = false;
        c.hybridUpdate = false;
        c.versioningBytes = c.lineBytes;
        break;
      case SvcDesign::HR:
        c.lazyCommit = true;
        c.staleBit = true;
        c.archBit = true;
        c.snarfing = true;
        c.hybridUpdate = false;
        c.versioningBytes = c.lineBytes;
        break;
      case SvcDesign::RL:
        c.lazyCommit = true;
        c.staleBit = true;
        c.archBit = true;
        c.snarfing = true;
        c.hybridUpdate = false;
        break;
      case SvcDesign::Final:
        c.lazyCommit = true;
        c.staleBit = true;
        c.archBit = true;
        c.snarfing = true;
        c.hybridUpdate = true;
        break;
    }
    return c;
}

} // namespace svc
