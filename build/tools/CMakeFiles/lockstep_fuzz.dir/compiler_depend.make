# Empty compiler generated dependencies file for lockstep_fuzz.
# This may be replaced when dependencies are built.
