file(REMOVE_RECURSE
  "CMakeFiles/lockstep_fuzz.dir/lockstep_fuzz.cc.o"
  "CMakeFiles/lockstep_fuzz.dir/lockstep_fuzz.cc.o.d"
  "lockstep_fuzz"
  "lockstep_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockstep_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
