# Empty dependencies file for spec_mem_contract_test.
# This may be replaced when dependencies are built.
