file(REMOVE_RECURSE
  "CMakeFiles/spec_mem_contract_test.dir/spec_mem_contract_test.cc.o"
  "CMakeFiles/spec_mem_contract_test.dir/spec_mem_contract_test.cc.o.d"
  "spec_mem_contract_test"
  "spec_mem_contract_test.pdb"
  "spec_mem_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_mem_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
