file(REMOVE_RECURSE
  "CMakeFiles/svc_vol_test.dir/svc_vol_test.cc.o"
  "CMakeFiles/svc_vol_test.dir/svc_vol_test.cc.o.d"
  "svc_vol_test"
  "svc_vol_test.pdb"
  "svc_vol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_vol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
