# Empty compiler generated dependencies file for svc_vol_test.
# This may be replaced when dependencies are built.
