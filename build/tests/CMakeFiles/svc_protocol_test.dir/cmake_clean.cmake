file(REMOVE_RECURSE
  "CMakeFiles/svc_protocol_test.dir/svc_protocol_test.cc.o"
  "CMakeFiles/svc_protocol_test.dir/svc_protocol_test.cc.o.d"
  "svc_protocol_test"
  "svc_protocol_test.pdb"
  "svc_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
