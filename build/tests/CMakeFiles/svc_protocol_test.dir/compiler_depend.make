# Empty compiler generated dependencies file for svc_protocol_test.
# This may be replaced when dependencies are built.
