file(REMOVE_RECURSE
  "CMakeFiles/workload_golden_test.dir/workload_golden_test.cc.o"
  "CMakeFiles/workload_golden_test.dir/workload_golden_test.cc.o.d"
  "workload_golden_test"
  "workload_golden_test.pdb"
  "workload_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
