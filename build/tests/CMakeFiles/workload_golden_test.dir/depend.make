# Empty dependencies file for workload_golden_test.
# This may be replaced when dependencies are built.
