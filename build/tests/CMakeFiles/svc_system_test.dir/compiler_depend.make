# Empty compiler generated dependencies file for svc_system_test.
# This may be replaced when dependencies are built.
