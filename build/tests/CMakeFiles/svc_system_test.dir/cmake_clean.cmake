file(REMOVE_RECURSE
  "CMakeFiles/svc_system_test.dir/svc_system_test.cc.o"
  "CMakeFiles/svc_system_test.dir/svc_system_test.cc.o.d"
  "svc_system_test"
  "svc_system_test.pdb"
  "svc_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
