file(REMOVE_RECURSE
  "CMakeFiles/multiscalar_test.dir/multiscalar_test.cc.o"
  "CMakeFiles/multiscalar_test.dir/multiscalar_test.cc.o.d"
  "multiscalar_test"
  "multiscalar_test.pdb"
  "multiscalar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiscalar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
