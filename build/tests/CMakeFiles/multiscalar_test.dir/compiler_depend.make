# Empty compiler generated dependencies file for multiscalar_test.
# This may be replaced when dependencies are built.
