file(REMOVE_RECURSE
  "CMakeFiles/svc_paper_examples_test.dir/svc_paper_examples_test.cc.o"
  "CMakeFiles/svc_paper_examples_test.dir/svc_paper_examples_test.cc.o.d"
  "svc_paper_examples_test"
  "svc_paper_examples_test.pdb"
  "svc_paper_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_paper_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
