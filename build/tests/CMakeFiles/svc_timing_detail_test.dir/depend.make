# Empty dependencies file for svc_timing_detail_test.
# This may be replaced when dependencies are built.
