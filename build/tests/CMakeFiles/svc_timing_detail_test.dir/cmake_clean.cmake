file(REMOVE_RECURSE
  "CMakeFiles/svc_timing_detail_test.dir/svc_timing_detail_test.cc.o"
  "CMakeFiles/svc_timing_detail_test.dir/svc_timing_detail_test.cc.o.d"
  "svc_timing_detail_test"
  "svc_timing_detail_test.pdb"
  "svc_timing_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_timing_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
