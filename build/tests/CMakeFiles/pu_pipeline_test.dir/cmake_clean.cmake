file(REMOVE_RECURSE
  "CMakeFiles/pu_pipeline_test.dir/pu_pipeline_test.cc.o"
  "CMakeFiles/pu_pipeline_test.dir/pu_pipeline_test.cc.o.d"
  "pu_pipeline_test"
  "pu_pipeline_test.pdb"
  "pu_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pu_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
