# Empty compiler generated dependencies file for pu_pipeline_test.
# This may be replaced when dependencies are built.
