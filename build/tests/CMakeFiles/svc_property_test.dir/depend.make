# Empty dependencies file for svc_property_test.
# This may be replaced when dependencies are built.
