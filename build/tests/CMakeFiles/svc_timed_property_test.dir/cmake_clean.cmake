file(REMOVE_RECURSE
  "CMakeFiles/svc_timed_property_test.dir/svc_timed_property_test.cc.o"
  "CMakeFiles/svc_timed_property_test.dir/svc_timed_property_test.cc.o.d"
  "svc_timed_property_test"
  "svc_timed_property_test.pdb"
  "svc_timed_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_timed_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
