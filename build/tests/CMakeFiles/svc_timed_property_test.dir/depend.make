# Empty dependencies file for svc_timed_property_test.
# This may be replaced when dependencies are built.
