file(REMOVE_RECURSE
  "CMakeFiles/assembler_error_test.dir/assembler_error_test.cc.o"
  "CMakeFiles/assembler_error_test.dir/assembler_error_test.cc.o.d"
  "assembler_error_test"
  "assembler_error_test.pdb"
  "assembler_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembler_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
