file(REMOVE_RECURSE
  "CMakeFiles/svc_design_behavior_test.dir/svc_design_behavior_test.cc.o"
  "CMakeFiles/svc_design_behavior_test.dir/svc_design_behavior_test.cc.o.d"
  "svc_design_behavior_test"
  "svc_design_behavior_test.pdb"
  "svc_design_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_design_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
