file(REMOVE_RECURSE
  "CMakeFiles/multiscalar_run.dir/multiscalar_run.cpp.o"
  "CMakeFiles/multiscalar_run.dir/multiscalar_run.cpp.o.d"
  "multiscalar_run"
  "multiscalar_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiscalar_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
