# Empty dependencies file for multiscalar_run.
# This may be replaced when dependencies are built.
