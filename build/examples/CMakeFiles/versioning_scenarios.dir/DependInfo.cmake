
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/versioning_scenarios.cpp" "examples/CMakeFiles/versioning_scenarios.dir/versioning_scenarios.cpp.o" "gcc" "examples/CMakeFiles/versioning_scenarios.dir/versioning_scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svc/CMakeFiles/svc_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/arb/CMakeFiles/svc_arb.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/svc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/multiscalar/CMakeFiles/svc_multiscalar.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/svc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/svc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/svc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
