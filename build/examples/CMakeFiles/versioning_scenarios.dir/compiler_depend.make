# Empty compiler generated dependencies file for versioning_scenarios.
# This may be replaced when dependencies are built.
