file(REMOVE_RECURSE
  "CMakeFiles/versioning_scenarios.dir/versioning_scenarios.cpp.o"
  "CMakeFiles/versioning_scenarios.dir/versioning_scenarios.cpp.o.d"
  "versioning_scenarios"
  "versioning_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioning_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
