# Empty dependencies file for svc_multiscalar.
# This may be replaced when dependencies are built.
