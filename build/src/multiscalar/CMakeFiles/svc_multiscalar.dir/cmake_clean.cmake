file(REMOVE_RECURSE
  "CMakeFiles/svc_multiscalar.dir/predictor.cc.o"
  "CMakeFiles/svc_multiscalar.dir/predictor.cc.o.d"
  "CMakeFiles/svc_multiscalar.dir/processor.cc.o"
  "CMakeFiles/svc_multiscalar.dir/processor.cc.o.d"
  "CMakeFiles/svc_multiscalar.dir/pu.cc.o"
  "CMakeFiles/svc_multiscalar.dir/pu.cc.o.d"
  "CMakeFiles/svc_multiscalar.dir/regring.cc.o"
  "CMakeFiles/svc_multiscalar.dir/regring.cc.o.d"
  "libsvc_multiscalar.a"
  "libsvc_multiscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_multiscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
