file(REMOVE_RECURSE
  "libsvc_multiscalar.a"
)
