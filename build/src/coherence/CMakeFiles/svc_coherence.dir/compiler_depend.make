# Empty compiler generated dependencies file for svc_coherence.
# This may be replaced when dependencies are built.
