file(REMOVE_RECURSE
  "CMakeFiles/svc_coherence.dir/msi_system.cc.o"
  "CMakeFiles/svc_coherence.dir/msi_system.cc.o.d"
  "libsvc_coherence.a"
  "libsvc_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
