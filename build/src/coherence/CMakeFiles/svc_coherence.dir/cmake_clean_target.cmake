file(REMOVE_RECURSE
  "libsvc_coherence.a"
)
