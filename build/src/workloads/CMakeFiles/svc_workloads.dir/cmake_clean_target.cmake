file(REMOVE_RECURSE
  "libsvc_workloads.a"
)
