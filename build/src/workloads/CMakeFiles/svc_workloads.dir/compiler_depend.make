# Empty compiler generated dependencies file for svc_workloads.
# This may be replaced when dependencies are built.
