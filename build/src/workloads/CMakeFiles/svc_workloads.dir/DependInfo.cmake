
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apsi.cc" "src/workloads/CMakeFiles/svc_workloads.dir/apsi.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/apsi.cc.o.d"
  "/root/repo/src/workloads/compress.cc" "src/workloads/CMakeFiles/svc_workloads.dir/compress.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/compress.cc.o.d"
  "/root/repo/src/workloads/gcc_ir.cc" "src/workloads/CMakeFiles/svc_workloads.dir/gcc_ir.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/gcc_ir.cc.o.d"
  "/root/repo/src/workloads/ijpeg.cc" "src/workloads/CMakeFiles/svc_workloads.dir/ijpeg.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/ijpeg.cc.o.d"
  "/root/repo/src/workloads/mgrid.cc" "src/workloads/CMakeFiles/svc_workloads.dir/mgrid.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/mgrid.cc.o.d"
  "/root/repo/src/workloads/perl.cc" "src/workloads/CMakeFiles/svc_workloads.dir/perl.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/perl.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/svc_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/trace_gen.cc" "src/workloads/CMakeFiles/svc_workloads.dir/trace_gen.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/trace_gen.cc.o.d"
  "/root/repo/src/workloads/vortex.cc" "src/workloads/CMakeFiles/svc_workloads.dir/vortex.cc.o" "gcc" "src/workloads/CMakeFiles/svc_workloads.dir/vortex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/svc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/svc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
