file(REMOVE_RECURSE
  "CMakeFiles/svc_workloads.dir/apsi.cc.o"
  "CMakeFiles/svc_workloads.dir/apsi.cc.o.d"
  "CMakeFiles/svc_workloads.dir/compress.cc.o"
  "CMakeFiles/svc_workloads.dir/compress.cc.o.d"
  "CMakeFiles/svc_workloads.dir/gcc_ir.cc.o"
  "CMakeFiles/svc_workloads.dir/gcc_ir.cc.o.d"
  "CMakeFiles/svc_workloads.dir/ijpeg.cc.o"
  "CMakeFiles/svc_workloads.dir/ijpeg.cc.o.d"
  "CMakeFiles/svc_workloads.dir/mgrid.cc.o"
  "CMakeFiles/svc_workloads.dir/mgrid.cc.o.d"
  "CMakeFiles/svc_workloads.dir/perl.cc.o"
  "CMakeFiles/svc_workloads.dir/perl.cc.o.d"
  "CMakeFiles/svc_workloads.dir/registry.cc.o"
  "CMakeFiles/svc_workloads.dir/registry.cc.o.d"
  "CMakeFiles/svc_workloads.dir/trace_gen.cc.o"
  "CMakeFiles/svc_workloads.dir/trace_gen.cc.o.d"
  "CMakeFiles/svc_workloads.dir/vortex.cc.o"
  "CMakeFiles/svc_workloads.dir/vortex.cc.o.d"
  "libsvc_workloads.a"
  "libsvc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
