# Empty compiler generated dependencies file for svc_mem.
# This may be replaced when dependencies are built.
