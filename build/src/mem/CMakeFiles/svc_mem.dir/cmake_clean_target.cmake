file(REMOVE_RECURSE
  "libsvc_mem.a"
)
