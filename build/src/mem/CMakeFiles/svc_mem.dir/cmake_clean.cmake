file(REMOVE_RECURSE
  "CMakeFiles/svc_mem.dir/bus.cc.o"
  "CMakeFiles/svc_mem.dir/bus.cc.o.d"
  "CMakeFiles/svc_mem.dir/main_memory.cc.o"
  "CMakeFiles/svc_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/svc_mem.dir/ref_spec_mem.cc.o"
  "CMakeFiles/svc_mem.dir/ref_spec_mem.cc.o.d"
  "libsvc_mem.a"
  "libsvc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
