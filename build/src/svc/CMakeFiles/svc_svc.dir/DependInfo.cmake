
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svc/design.cc" "src/svc/CMakeFiles/svc_svc.dir/design.cc.o" "gcc" "src/svc/CMakeFiles/svc_svc.dir/design.cc.o.d"
  "/root/repo/src/svc/protocol.cc" "src/svc/CMakeFiles/svc_svc.dir/protocol.cc.o" "gcc" "src/svc/CMakeFiles/svc_svc.dir/protocol.cc.o.d"
  "/root/repo/src/svc/system.cc" "src/svc/CMakeFiles/svc_svc.dir/system.cc.o" "gcc" "src/svc/CMakeFiles/svc_svc.dir/system.cc.o.d"
  "/root/repo/src/svc/vol.cc" "src/svc/CMakeFiles/svc_svc.dir/vol.cc.o" "gcc" "src/svc/CMakeFiles/svc_svc.dir/vol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/svc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
