# Empty compiler generated dependencies file for svc_svc.
# This may be replaced when dependencies are built.
