file(REMOVE_RECURSE
  "CMakeFiles/svc_svc.dir/design.cc.o"
  "CMakeFiles/svc_svc.dir/design.cc.o.d"
  "CMakeFiles/svc_svc.dir/protocol.cc.o"
  "CMakeFiles/svc_svc.dir/protocol.cc.o.d"
  "CMakeFiles/svc_svc.dir/system.cc.o"
  "CMakeFiles/svc_svc.dir/system.cc.o.d"
  "CMakeFiles/svc_svc.dir/vol.cc.o"
  "CMakeFiles/svc_svc.dir/vol.cc.o.d"
  "libsvc_svc.a"
  "libsvc_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
