file(REMOVE_RECURSE
  "libsvc_svc.a"
)
