# Empty dependencies file for svc_common.
# This may be replaced when dependencies are built.
