file(REMOVE_RECURSE
  "libsvc_common.a"
)
