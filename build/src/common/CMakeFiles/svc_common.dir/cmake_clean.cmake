file(REMOVE_RECURSE
  "CMakeFiles/svc_common.dir/log.cc.o"
  "CMakeFiles/svc_common.dir/log.cc.o.d"
  "CMakeFiles/svc_common.dir/stats.cc.o"
  "CMakeFiles/svc_common.dir/stats.cc.o.d"
  "libsvc_common.a"
  "libsvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
