file(REMOVE_RECURSE
  "CMakeFiles/svc_isa.dir/assembler.cc.o"
  "CMakeFiles/svc_isa.dir/assembler.cc.o.d"
  "CMakeFiles/svc_isa.dir/builder.cc.o"
  "CMakeFiles/svc_isa.dir/builder.cc.o.d"
  "CMakeFiles/svc_isa.dir/disassembler.cc.o"
  "CMakeFiles/svc_isa.dir/disassembler.cc.o.d"
  "CMakeFiles/svc_isa.dir/encoding.cc.o"
  "CMakeFiles/svc_isa.dir/encoding.cc.o.d"
  "CMakeFiles/svc_isa.dir/interpreter.cc.o"
  "CMakeFiles/svc_isa.dir/interpreter.cc.o.d"
  "CMakeFiles/svc_isa.dir/program.cc.o"
  "CMakeFiles/svc_isa.dir/program.cc.o.d"
  "libsvc_isa.a"
  "libsvc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
