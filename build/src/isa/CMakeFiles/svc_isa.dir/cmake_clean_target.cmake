file(REMOVE_RECURSE
  "libsvc_isa.a"
)
