# Empty compiler generated dependencies file for svc_isa.
# This may be replaced when dependencies are built.
