file(REMOVE_RECURSE
  "libsvc_arb.a"
)
