file(REMOVE_RECURSE
  "CMakeFiles/svc_arb.dir/arb.cc.o"
  "CMakeFiles/svc_arb.dir/arb.cc.o.d"
  "libsvc_arb.a"
  "libsvc_arb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
