# Empty dependencies file for svc_arb.
# This may be replaced when dependencies are built.
