# Empty dependencies file for fig19_ipc_32kb.
# This may be replaced when dependencies are built.
