file(REMOVE_RECURSE
  "CMakeFiles/fig19_ipc_32kb.dir/fig19_ipc_32kb.cc.o"
  "CMakeFiles/fig19_ipc_32kb.dir/fig19_ipc_32kb.cc.o.d"
  "fig19_ipc_32kb"
  "fig19_ipc_32kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_ipc_32kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
