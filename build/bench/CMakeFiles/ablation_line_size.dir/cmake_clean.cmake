file(REMOVE_RECURSE
  "CMakeFiles/ablation_line_size.dir/ablation_line_size.cc.o"
  "CMakeFiles/ablation_line_size.dir/ablation_line_size.cc.o.d"
  "ablation_line_size"
  "ablation_line_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_line_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
