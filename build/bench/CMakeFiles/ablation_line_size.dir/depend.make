# Empty dependencies file for ablation_line_size.
# This may be replaced when dependencies are built.
