
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_line_size.cc" "bench/CMakeFiles/ablation_line_size.dir/ablation_line_size.cc.o" "gcc" "bench/CMakeFiles/ablation_line_size.dir/ablation_line_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/svc_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/svc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/multiscalar/CMakeFiles/svc_multiscalar.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/svc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/svc_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/arb/CMakeFiles/svc_arb.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/svc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/svc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
