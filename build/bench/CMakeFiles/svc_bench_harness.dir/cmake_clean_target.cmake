file(REMOVE_RECURSE
  "libsvc_bench_harness.a"
)
