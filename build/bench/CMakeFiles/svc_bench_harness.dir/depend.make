# Empty dependencies file for svc_bench_harness.
# This may be replaced when dependencies are built.
