file(REMOVE_RECURSE
  "CMakeFiles/svc_bench_harness.dir/harness.cc.o"
  "CMakeFiles/svc_bench_harness.dir/harness.cc.o.d"
  "libsvc_bench_harness.a"
  "libsvc_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
