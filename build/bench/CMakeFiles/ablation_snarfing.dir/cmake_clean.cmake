file(REMOVE_RECURSE
  "CMakeFiles/ablation_snarfing.dir/ablation_snarfing.cc.o"
  "CMakeFiles/ablation_snarfing.dir/ablation_snarfing.cc.o.d"
  "ablation_snarfing"
  "ablation_snarfing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snarfing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
