# Empty compiler generated dependencies file for ablation_snarfing.
# This may be replaced when dependencies are built.
