# Empty compiler generated dependencies file for fig20_ipc_64kb.
# This may be replaced when dependencies are built.
