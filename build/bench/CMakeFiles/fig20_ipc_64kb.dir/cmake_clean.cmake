file(REMOVE_RECURSE
  "CMakeFiles/fig20_ipc_64kb.dir/fig20_ipc_64kb.cc.o"
  "CMakeFiles/fig20_ipc_64kb.dir/fig20_ipc_64kb.cc.o.d"
  "fig20_ipc_64kb"
  "fig20_ipc_64kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_ipc_64kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
