file(REMOVE_RECURSE
  "CMakeFiles/ablation_trace_patterns.dir/ablation_trace_patterns.cc.o"
  "CMakeFiles/ablation_trace_patterns.dir/ablation_trace_patterns.cc.o.d"
  "ablation_trace_patterns"
  "ablation_trace_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
