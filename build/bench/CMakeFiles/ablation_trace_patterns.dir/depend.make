# Empty dependencies file for ablation_trace_patterns.
# This may be replaced when dependencies are built.
