file(REMOVE_RECURSE
  "CMakeFiles/table2_miss_ratios.dir/table2_miss_ratios.cc.o"
  "CMakeFiles/table2_miss_ratios.dir/table2_miss_ratios.cc.o.d"
  "table2_miss_ratios"
  "table2_miss_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_miss_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
