# Empty dependencies file for table2_miss_ratios.
# This may be replaced when dependencies are built.
