file(REMOVE_RECURSE
  "CMakeFiles/table3_bus_utilization.dir/table3_bus_utilization.cc.o"
  "CMakeFiles/table3_bus_utilization.dir/table3_bus_utilization.cc.o.d"
  "table3_bus_utilization"
  "table3_bus_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bus_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
