file(REMOVE_RECURSE
  "CMakeFiles/ablation_designs.dir/ablation_designs.cc.o"
  "CMakeFiles/ablation_designs.dir/ablation_designs.cc.o.d"
  "ablation_designs"
  "ablation_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
