file(REMOVE_RECURSE
  "CMakeFiles/ablation_hit_latency.dir/ablation_hit_latency.cc.o"
  "CMakeFiles/ablation_hit_latency.dir/ablation_hit_latency.cc.o.d"
  "ablation_hit_latency"
  "ablation_hit_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hit_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
