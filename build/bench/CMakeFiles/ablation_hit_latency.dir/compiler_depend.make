# Empty compiler generated dependencies file for ablation_hit_latency.
# This may be replaced when dependencies are built.
