# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table2_miss_ratios "/root/repo/build/bench/table2_miss_ratios")
set_tests_properties(bench_smoke_table2_miss_ratios PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table3_bus_utilization "/root/repo/build/bench/table3_bus_utilization")
set_tests_properties(bench_smoke_table3_bus_utilization PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig19_ipc_32kb "/root/repo/build/bench/fig19_ipc_32kb")
set_tests_properties(bench_smoke_fig19_ipc_32kb PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig20_ipc_64kb "/root/repo/build/bench/fig20_ipc_64kb")
set_tests_properties(bench_smoke_fig20_ipc_64kb PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_designs "/root/repo/build/bench/ablation_designs")
set_tests_properties(bench_smoke_ablation_designs PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_hit_latency "/root/repo/build/bench/ablation_hit_latency")
set_tests_properties(bench_smoke_ablation_hit_latency PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_snarfing "/root/repo/build/bench/ablation_snarfing")
set_tests_properties(bench_smoke_ablation_snarfing PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_line_size "/root/repo/build/bench/ablation_line_size")
set_tests_properties(bench_smoke_ablation_line_size PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_trace_patterns "/root/repo/build/bench/ablation_trace_patterns")
set_tests_properties(bench_smoke_ablation_trace_patterns PROPERTIES  ENVIRONMENT "SVC_BENCH_SCALE=1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
